// Unit tests for src/util: Status/Result, CRC32, Rng, serialization.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/util/crc32.h"
#include "src/util/result.h"
#include "src/util/rng.h"
#include "src/util/serializer.h"
#include "src/util/status.h"

namespace logfs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kOk);
  EXPECT_EQ(status.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = NotFoundError("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
  EXPECT_EQ(status.message(), "missing thing");
  EXPECT_EQ(status.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(ExistsError("").code(), ErrorCode::kExists);
  EXPECT_EQ(NoSpaceError("").code(), ErrorCode::kNoSpace);
  EXPECT_EQ(InvalidArgumentError("").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(IoError("").code(), ErrorCode::kIoError);
  EXPECT_EQ(CorruptedError("").code(), ErrorCode::kCorrupted);
  EXPECT_EQ(NotDirectoryError("").code(), ErrorCode::kNotDirectory);
  EXPECT_EQ(IsDirectoryError("").code(), ErrorCode::kIsDirectory);
  EXPECT_EQ(NotEmptyError("").code(), ErrorCode::kNotEmpty);
  EXPECT_EQ(NameTooLongError("").code(), ErrorCode::kNameTooLong);
  EXPECT_EQ(TooLargeError("").code(), ErrorCode::kTooLarge);
  EXPECT_EQ(ReadOnlyError("").code(), ErrorCode::kReadOnly);
  EXPECT_EQ(BusyError("").code(), ErrorCode::kBusy);
  EXPECT_EQ(CrashedError("").code(), ErrorCode::kCrashed);
  EXPECT_EQ(NotSupportedError("").code(), ErrorCode::kNotSupported);
  EXPECT_EQ(OutOfRangeError("").code(), ErrorCode::kOutOfRange);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = NotFoundError("nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  ASSIGN_OR_RETURN(int half, HalveEven(x));
  ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = QuarterViaMacro(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> err = QuarterViaMacro(6);  // 6/2 = 3 is odd.
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), ErrorCode::kInvalidArgument);
}

TEST(Crc32Test, KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (standard check value).
  const char* s = "123456789";
  uint32_t crc = Crc32(std::as_bytes(std::span<const char>(s, 9)));
  EXPECT_EQ(crc, 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) {
  EXPECT_EQ(Crc32(std::span<const std::byte>()), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  std::vector<std::byte> data(1000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 7 + 3);
  }
  uint32_t one_shot = Crc32(data);
  uint32_t state = Crc32Init();
  state = Crc32Update(state, std::span<const std::byte>(data).subspan(0, 400));
  state = Crc32Update(state, std::span<const std::byte>(data).subspan(400));
  EXPECT_EQ(Crc32Finalize(state), one_shot);
}

TEST(Crc32Test, Ieee8023KnownAnswers) {
  // Standard check values for the reflected IEEE 802.3 polynomial.
  auto crc_of = [](std::string_view s) {
    return Crc32(std::as_bytes(std::span<const char>(s.data(), s.size())));
  };
  EXPECT_EQ(crc_of("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc_of("a"), 0xE8B7BE43u);
  EXPECT_EQ(crc_of("abc"), 0x352441C2u);
  EXPECT_EQ(crc_of("message digest"), 0x20159D7Fu);
  EXPECT_EQ(crc_of("The quick brown fox jumps over the lazy dog"), 0x414FA339u);
  const std::vector<std::byte> zeros(32, std::byte{0});
  EXPECT_EQ(Crc32(zeros), 0x190A55ADu);
  const std::vector<std::byte> ones(32, std::byte{0xFF});
  EXPECT_EQ(Crc32(ones), 0xFF6CAB0Bu);
}

TEST(Crc32Test, Slice8MatchesBytewiseUnderRandomStreaming) {
  // Feed the same random buffer through the slice-by-8 kernel and the
  // one-table reference, carved into different random chunkings. The
  // slice-by-8 tail handling (head alignment, <8-byte remainders) only
  // matters at chunk seams, so random seams are the interesting input.
  Rng rng(0xC5C32u);
  for (int round = 0; round < 50; ++round) {
    const size_t size = rng.NextInRange(0, 4096);
    std::vector<std::byte> data(size);
    for (auto& b : data) {
      b = static_cast<std::byte>(rng.NextBelow(256));
    }
    const uint32_t reference = Crc32Finalize(Crc32UpdateBytewise(Crc32Init(), data));
    EXPECT_EQ(Crc32(data), reference);

    uint32_t sliced = Crc32Init();
    uint32_t bytewise = Crc32Init();
    for (size_t pos = 0; pos < size;) {
      const size_t chunk = std::min<size_t>(rng.NextInRange(1, 97), size - pos);
      std::span<const std::byte> piece = std::span(data).subspan(pos, chunk);
      sliced = Crc32Update(sliced, piece);
      bytewise = Crc32UpdateBytewise(bytewise, piece);
      pos += chunk;
    }
    EXPECT_EQ(sliced, bytewise) << "round " << round << " size " << size;
    EXPECT_EQ(Crc32Finalize(sliced), reference);
  }
}

TEST(Crc32Test, HardwareKernelKnownAnswers) {
  // The dispatched kernel (PCLMULQDQ folding on x86-64, the ARMv8 CRC32
  // extension on aarch64, slice-by-8 where neither exists) must hit the
  // same standard check values as the reference. Exercised regardless of
  // host support: Crc32UpdateHw always resolves to something.
  auto hw_crc = [](std::span<const std::byte> data) {
    return Crc32Finalize(Crc32UpdateHw(Crc32Init(), data));
  };
  const char* s = "123456789";
  EXPECT_EQ(hw_crc(std::as_bytes(std::span<const char>(s, 9))), 0xCBF43926u);
  // Sizes that cross the folding kernel's structural boundaries: below the
  // 64-byte minimum, exact multiples of 64, the 16-byte single-fold path,
  // and ragged tails peeled back to the table kernel.
  for (size_t size : {0u, 1u, 7u, 15u, 16u, 63u, 64u, 65u, 80u, 112u, 128u,
                      192u, 255u, 256u, 1024u, 4096u, 65536u, 65543u}) {
    std::vector<std::byte> data(size);
    for (size_t i = 0; i < size; ++i) {
      data[i] = static_cast<std::byte>((i * 131 + 89) & 0xFF);
    }
    EXPECT_EQ(hw_crc(data), Crc32Finalize(Crc32UpdateBytewise(Crc32Init(), data)))
        << "size " << size << " backend " << Crc32Backend();
  }
}

TEST(Crc32Test, AllKernelsAgreeUnderRandomStreaming) {
  // Same random buffers, random chunk seams, three kernels — and the
  // streaming pass rotates kernels between chunks, since all share one
  // running-state convention.
  Rng rng(0xC5C33u);
  for (int round = 0; round < 30; ++round) {
    const size_t size = rng.NextInRange(0, 20000);
    std::vector<std::byte> data(size);
    for (auto& b : data) {
      b = static_cast<std::byte>(rng.NextBelow(256));
    }
    const uint32_t reference = Crc32UpdateBytewise(Crc32Init(), data);
    EXPECT_EQ(Crc32UpdateSlice8(Crc32Init(), data), reference);
    EXPECT_EQ(Crc32UpdateHw(Crc32Init(), data), reference);

    uint32_t mixed = Crc32Init();
    int kernel = 0;
    for (size_t pos = 0; pos < size;) {
      const size_t chunk = std::min<size_t>(rng.NextInRange(1, 300), size - pos);
      std::span<const std::byte> piece = std::span(data).subspan(pos, chunk);
      switch (kernel++ % 3) {
        case 0: mixed = Crc32UpdateBytewise(mixed, piece); break;
        case 1: mixed = Crc32UpdateSlice8(mixed, piece); break;
        default: mixed = Crc32UpdateHw(mixed, piece); break;
      }
      pos += chunk;
    }
    EXPECT_EQ(mixed, reference) << "round " << round << " size " << size
                                << " backend " << Crc32Backend();
  }
}

TEST(Crc32Test, DetectsBitFlip) {
  std::vector<std::byte> data(64, std::byte{0xAB});
  uint32_t before = Crc32(data);
  data[17] ^= std::byte{0x01};
  EXPECT_NE(Crc32(data), before);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  // bound 1 always yields 0.
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialHasRoughlyRightMean) {
  Rng rng(21);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.3);
}

TEST(SerializerTest, RoundTripAllTypes) {
  std::vector<std::byte> buffer(256);
  BufferWriter writer(buffer);
  ASSERT_TRUE(writer.WriteU8(0xAB).ok());
  ASSERT_TRUE(writer.WriteU16(0xBEEF).ok());
  ASSERT_TRUE(writer.WriteU32(0xDEADBEEF).ok());
  ASSERT_TRUE(writer.WriteU64(0x0123456789ABCDEFull).ok());
  ASSERT_TRUE(writer.WriteI64(-42).ok());
  ASSERT_TRUE(writer.WriteF64(3.14159).ok());
  ASSERT_TRUE(writer.WriteString("hello").ok());

  BufferReader reader(buffer);
  EXPECT_EQ(reader.ReadU8().value(), 0xAB);
  EXPECT_EQ(reader.ReadU16().value(), 0xBEEF);
  EXPECT_EQ(reader.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(reader.ReadU64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.ReadI64().value(), -42);
  EXPECT_DOUBLE_EQ(reader.ReadF64().value(), 3.14159);
  EXPECT_EQ(reader.ReadString().value(), "hello");
}

TEST(SerializerTest, LittleEndianLayout) {
  std::vector<std::byte> buffer(4);
  BufferWriter writer(buffer);
  ASSERT_TRUE(writer.WriteU32(0x01020304).ok());
  EXPECT_EQ(buffer[0], std::byte{0x04});
  EXPECT_EQ(buffer[1], std::byte{0x03});
  EXPECT_EQ(buffer[2], std::byte{0x02});
  EXPECT_EQ(buffer[3], std::byte{0x01});
}

TEST(SerializerTest, OverflowDetected) {
  std::vector<std::byte> buffer(3);
  BufferWriter writer(buffer);
  EXPECT_TRUE(writer.WriteU16(1).ok());
  EXPECT_FALSE(writer.WriteU16(2).ok());

  BufferReader reader(buffer);
  EXPECT_TRUE(reader.ReadU16().ok());
  EXPECT_FALSE(reader.ReadU16().ok());
}

TEST(SerializerTest, SeekPatchesChecksumField) {
  std::vector<std::byte> buffer(16);
  BufferWriter writer(buffer);
  ASSERT_TRUE(writer.WriteU32(0).ok());  // Placeholder.
  ASSERT_TRUE(writer.WriteU64(77).ok());
  ASSERT_TRUE(writer.SeekTo(0).ok());
  ASSERT_TRUE(writer.WriteU32(123).ok());
  BufferReader reader(buffer);
  EXPECT_EQ(reader.ReadU32().value(), 123u);
  EXPECT_EQ(reader.ReadU64().value(), 77u);
}

TEST(SerializerTest, ZerosAndSkip) {
  std::vector<std::byte> buffer(8, std::byte{0xFF});
  BufferWriter writer(buffer);
  ASSERT_TRUE(writer.WriteZeros(4).ok());
  EXPECT_EQ(buffer[3], std::byte{0});
  EXPECT_EQ(buffer[4], std::byte{0xFF});
  BufferReader reader(buffer);
  ASSERT_TRUE(reader.Skip(4).ok());
  EXPECT_EQ(reader.ReadU32().value(), 0xFFFFFFFFu);
}

}  // namespace
}  // namespace logfs
