// Unit tests for the write-behind BufferCache.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "src/cache/buffer_cache.h"
#include "src/sim/sim_clock.h"

namespace logfs {
namespace {

constexpr size_t kBlockSize = 512;

// Writeback handler that records what it was given.
class RecordingHandler : public WritebackHandler {
 public:
  Status WriteBack(std::span<CacheBlock* const> blocks) override {
    ++batches;
    std::vector<BlockKey> keys;
    for (CacheBlock* block : blocks) {
      keys.push_back(block->key());
      last_data[block->key().index] =
          std::vector<std::byte>(block->data().begin(), block->data().end());
    }
    batch_keys.push_back(keys);
    if (fail_next) {
      fail_next = false;
      return IoError("injected writeback failure");
    }
    return OkStatus();
  }

  int batches = 0;
  bool fail_next = false;
  std::vector<std::vector<BlockKey>> batch_keys;
  std::map<uint64_t, std::vector<std::byte>> last_data;
};

BufferCache::FetchFn FillWith(uint8_t value) {
  return [value](std::span<std::byte> out) {
    std::memset(out.data(), value, out.size());
    return OkStatus();
  };
}

CachePolicy SmallPolicy(size_t capacity, size_t watermark = 0) {
  CachePolicy policy;
  policy.capacity_blocks = capacity;
  policy.dirty_high_watermark = watermark != 0 ? watermark : capacity;
  return policy;
}

TEST(BufferCacheTest, MissFetchesThenHits) {
  SimClock clock;
  BufferCache cache(kBlockSize, SmallPolicy(4), &clock);
  auto ref = cache.Acquire(BlockKey{1, 0}, FillWith(0xAA));
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ((*ref)->data()[0], std::byte{0xAA});
  EXPECT_EQ(cache.stats().misses, 1u);
  auto again = cache.Acquire(BlockKey{1, 0}, FillWith(0xBB));  // Fetch not called.
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->data()[0], std::byte{0xAA});
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(BufferCacheTest, FetchFailurePropagatesAndLeavesNoEntry) {
  SimClock clock;
  BufferCache cache(kBlockSize, SmallPolicy(4), &clock);
  auto ref = cache.Acquire(BlockKey{1, 0}, [](std::span<std::byte>) {
    return IoError("bad sector");
  });
  EXPECT_FALSE(ref.ok());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(BufferCacheTest, CreateZeroFills) {
  SimClock clock;
  BufferCache cache(kBlockSize, SmallPolicy(4), &clock);
  auto ref = cache.Create(BlockKey{2, 9});
  ASSERT_TRUE(ref.ok());
  for (std::byte b : (*ref)->data()) {
    EXPECT_EQ(b, std::byte{0});
  }
}

TEST(BufferCacheTest, LruEvictionOfCleanBlocks) {
  SimClock clock;
  BufferCache cache(kBlockSize, SmallPolicy(2), &clock);
  ASSERT_TRUE(cache.Acquire(BlockKey{1, 0}, FillWith(1)).ok());
  ASSERT_TRUE(cache.Acquire(BlockKey{1, 1}, FillWith(2)).ok());
  // Touch block 0 so block 1 is LRU.
  ASSERT_TRUE(cache.Acquire(BlockKey{1, 0}, FillWith(0)).ok());
  ASSERT_TRUE(cache.Acquire(BlockKey{1, 2}, FillWith(3)).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.AcquireIfPresent(BlockKey{1, 0}));
  EXPECT_FALSE(cache.AcquireIfPresent(BlockKey{1, 1}));  // Evicted.
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(BufferCacheTest, PinnedBlocksAreNotEvicted) {
  SimClock clock;
  BufferCache cache(kBlockSize, SmallPolicy(2), &clock);
  auto pinned = cache.Acquire(BlockKey{1, 0}, FillWith(1));
  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE(cache.Acquire(BlockKey{1, 1}, FillWith(2)).ok());
  ASSERT_TRUE(cache.Acquire(BlockKey{1, 2}, FillWith(3)).ok());
  // Block 0 is pinned by `pinned`; block 1 must have been evicted instead.
  EXPECT_TRUE(cache.AcquireIfPresent(BlockKey{1, 0}));
  EXPECT_FALSE(cache.AcquireIfPresent(BlockKey{1, 1}));
}

TEST(BufferCacheTest, DirtyBlocksWrittenBackOnFlushAll) {
  SimClock clock;
  RecordingHandler handler;
  BufferCache cache(kBlockSize, SmallPolicy(8), &clock);
  cache.set_writeback_handler(&handler);
  auto ref = cache.Acquire(BlockKey{1, 3}, FillWith(0));
  ASSERT_TRUE(ref.ok());
  (*ref)->mutable_data()[0] = std::byte{0x5A};
  cache.MarkDirty(ref->get());
  EXPECT_EQ(cache.dirty_count(), 1u);
  ref->Release();
  ASSERT_TRUE(cache.FlushAll().ok());
  EXPECT_EQ(cache.dirty_count(), 0u);
  EXPECT_EQ(handler.batches, 1);
  EXPECT_EQ(handler.last_data[3][0], std::byte{0x5A});
}

TEST(BufferCacheTest, WritebackBatchesSortedByKey) {
  SimClock clock;
  RecordingHandler handler;
  BufferCache cache(kBlockSize, SmallPolicy(8), &clock);
  cache.set_writeback_handler(&handler);
  for (uint64_t index : {5u, 1u, 3u}) {
    auto ref = cache.Acquire(BlockKey{1, index}, FillWith(0));
    ASSERT_TRUE(ref.ok());
    cache.MarkDirty(ref->get());
  }
  ASSERT_TRUE(cache.FlushAll().ok());
  ASSERT_EQ(handler.batch_keys.size(), 1u);
  ASSERT_EQ(handler.batch_keys[0].size(), 3u);
  EXPECT_EQ(handler.batch_keys[0][0].index, 1u);
  EXPECT_EQ(handler.batch_keys[0][1].index, 3u);
  EXPECT_EQ(handler.batch_keys[0][2].index, 5u);
}

TEST(BufferCacheTest, FailedWritebackKeepsBlocksDirty) {
  SimClock clock;
  RecordingHandler handler;
  handler.fail_next = true;
  BufferCache cache(kBlockSize, SmallPolicy(8), &clock);
  cache.set_writeback_handler(&handler);
  auto ref = cache.Acquire(BlockKey{1, 0}, FillWith(0));
  ASSERT_TRUE(ref.ok());
  cache.MarkDirty(ref->get());
  ref->Release();
  EXPECT_FALSE(cache.FlushAll().ok());
  EXPECT_EQ(cache.dirty_count(), 1u);
  EXPECT_TRUE(cache.FlushAll().ok());  // Retry succeeds.
  EXPECT_EQ(cache.dirty_count(), 0u);
}

TEST(BufferCacheTest, AgeBasedWritebackHonorsThreshold) {
  SimClock clock;
  RecordingHandler handler;
  CachePolicy policy = SmallPolicy(8);
  policy.writeback_age_seconds = 30.0;
  BufferCache cache(kBlockSize, policy, &clock);
  cache.set_writeback_handler(&handler);
  auto ref = cache.Acquire(BlockKey{1, 0}, FillWith(0));
  ASSERT_TRUE(ref.ok());
  cache.MarkDirty(ref->get());
  ref->Release();
  clock.Advance(10.0);
  ASSERT_TRUE(cache.MaybeWriteBackByAge().ok());
  EXPECT_EQ(handler.batches, 0);  // Too young.
  clock.Advance(25.0);
  ASSERT_TRUE(cache.MaybeWriteBackByAge().ok());
  EXPECT_EQ(handler.batches, 1);  // 35 s old now.
  EXPECT_EQ(cache.dirty_count(), 0u);
}

TEST(BufferCacheTest, AgeTriggerFlushesAllDirtyBlocks) {
  // Once one block crosses the age threshold, the whole dirty set goes out
  // (maximizing the segment write, as LFS wants).
  SimClock clock;
  RecordingHandler handler;
  CachePolicy policy = SmallPolicy(8);
  policy.writeback_age_seconds = 30.0;
  BufferCache cache(kBlockSize, policy, &clock);
  cache.set_writeback_handler(&handler);
  {
    auto old_ref = cache.Acquire(BlockKey{1, 0}, FillWith(0));
    ASSERT_TRUE(old_ref.ok());
    cache.MarkDirty(old_ref->get());
  }
  clock.Advance(31.0);
  {
    auto young_ref = cache.Acquire(BlockKey{1, 1}, FillWith(0));
    ASSERT_TRUE(young_ref.ok());
    cache.MarkDirty(young_ref->get());
  }
  ASSERT_TRUE(cache.MaybeWriteBackByAge().ok());
  EXPECT_EQ(handler.batches, 1);
  ASSERT_EQ(handler.batch_keys[0].size(), 2u);
}

TEST(BufferCacheTest, NeedsWritebackAtHighWatermark) {
  SimClock clock;
  BufferCache cache(kBlockSize, SmallPolicy(8, /*watermark=*/2), &clock);
  auto a = cache.Acquire(BlockKey{1, 0}, FillWith(0));
  ASSERT_TRUE(a.ok());
  cache.MarkDirty(a->get());
  EXPECT_FALSE(cache.NeedsWriteback());
  auto b = cache.Acquire(BlockKey{1, 1}, FillWith(0));
  ASSERT_TRUE(b.ok());
  cache.MarkDirty(b->get());
  EXPECT_TRUE(cache.NeedsWriteback());
}

TEST(BufferCacheTest, FlushObjectOnlyFlushesThatObject) {
  SimClock clock;
  RecordingHandler handler;
  BufferCache cache(kBlockSize, SmallPolicy(8), &clock);
  cache.set_writeback_handler(&handler);
  for (uint64_t object : {7u, 8u}) {
    auto ref = cache.Acquire(BlockKey{object, 0}, FillWith(0));
    ASSERT_TRUE(ref.ok());
    cache.MarkDirty(ref->get());
  }
  ASSERT_TRUE(cache.FlushObject(7).ok());
  EXPECT_EQ(cache.dirty_count(), 1u);
  ASSERT_EQ(handler.batch_keys.size(), 1u);
  EXPECT_EQ(handler.batch_keys[0][0].object_id, 7u);
}

TEST(BufferCacheTest, InvalidateObjectDropsDirtyBlocks) {
  SimClock clock;
  RecordingHandler handler;
  BufferCache cache(kBlockSize, SmallPolicy(8), &clock);
  cache.set_writeback_handler(&handler);
  for (uint64_t index = 0; index < 3; ++index) {
    auto ref = cache.Acquire(BlockKey{5, index}, FillWith(0));
    ASSERT_TRUE(ref.ok());
    cache.MarkDirty(ref->get());
  }
  cache.InvalidateObject(5, /*first_index=*/1);
  EXPECT_EQ(cache.dirty_count(), 1u);
  EXPECT_TRUE(cache.AcquireIfPresent(BlockKey{5, 0}));
  EXPECT_FALSE(cache.AcquireIfPresent(BlockKey{5, 1}));
  EXPECT_FALSE(cache.AcquireIfPresent(BlockKey{5, 2}));
  cache.InvalidateObject(5);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.dirty_count(), 0u);
}

TEST(BufferCacheTest, InvalidateSingleBlock) {
  SimClock clock;
  BufferCache cache(kBlockSize, SmallPolicy(8), &clock);
  ASSERT_TRUE(cache.Acquire(BlockKey{1, 0}, FillWith(0)).ok());
  ASSERT_TRUE(cache.Acquire(BlockKey{1, 1}, FillWith(0)).ok());
  cache.InvalidateBlock(BlockKey{1, 0});
  EXPECT_FALSE(cache.AcquireIfPresent(BlockKey{1, 0}));
  EXPECT_TRUE(cache.AcquireIfPresent(BlockKey{1, 1}));
  cache.InvalidateBlock(BlockKey{9, 9});  // Absent: no-op.
}

TEST(BufferCacheTest, DropCleanKeepsDirty) {
  SimClock clock;
  RecordingHandler handler;
  BufferCache cache(kBlockSize, SmallPolicy(8), &clock);
  cache.set_writeback_handler(&handler);
  ASSERT_TRUE(cache.Acquire(BlockKey{1, 0}, FillWith(0)).ok());
  auto dirty_ref = cache.Acquire(BlockKey{1, 1}, FillWith(0));
  ASSERT_TRUE(dirty_ref.ok());
  cache.MarkDirty(dirty_ref->get());
  dirty_ref->Release();
  cache.DropClean();
  EXPECT_FALSE(cache.AcquireIfPresent(BlockKey{1, 0}));
  EXPECT_TRUE(cache.AcquireIfPresent(BlockKey{1, 1}));
}

TEST(BufferCacheTest, EvictionTriggersWritebackWhenAllDirty) {
  SimClock clock;
  RecordingHandler handler;
  BufferCache cache(kBlockSize, SmallPolicy(2), &clock);
  cache.set_writeback_handler(&handler);
  for (uint64_t index = 0; index < 2; ++index) {
    auto ref = cache.Acquire(BlockKey{1, index}, FillWith(0));
    ASSERT_TRUE(ref.ok());
    cache.MarkDirty(ref->get());
  }
  // Cache is full of dirty blocks; acquiring a third must flush.
  ASSERT_TRUE(cache.Acquire(BlockKey{1, 2}, FillWith(0)).ok());
  EXPECT_GE(handler.batches, 1);
  EXPECT_EQ(cache.size(), 2u);
}

}  // namespace
}  // namespace logfs
