// Unit tests for the simulated block-device stack: MemoryDisk timing and
// stats, FaultInjectingDisk crash semantics, TracingDisk records.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "src/disk/fault_disk.h"
#include "src/disk/memory_disk.h"
#include "src/disk/striped_disk.h"
#include "src/disk/tracing_disk.h"
#include "src/fsbase/path.h"
#include "src/lfs/lfs_file_system.h"
#include "src/sim/disk_model.h"
#include "src/sim/sim_clock.h"

namespace logfs {
namespace {

std::vector<std::byte> Pattern(size_t bytes, uint8_t seed) {
  std::vector<std::byte> data(bytes);
  for (size_t i = 0; i < bytes; ++i) {
    data[i] = static_cast<std::byte>(seed + i);
  }
  return data;
}

TEST(DiskModelTest, SequentialAccessHasNoPositioningCost) {
  DiskModel model(DiskModelParams{}, 1 << 20);
  EXPECT_DOUBLE_EQ(model.PositioningSeconds(100, 100), 0.0);
  EXPECT_GT(model.PositioningSeconds(101, 100), 0.0);
}

TEST(DiskModelTest, LongerSeeksCostMore) {
  DiskModel model(DiskModelParams{}, 1 << 20);
  const double near = model.PositioningSeconds(1000, 0);
  const double far = model.PositioningSeconds(900000, 0);
  EXPECT_LT(near, far);
}

TEST(DiskModelTest, TransferScalesWithSize) {
  DiskModel model(DiskModelParams{}, 1 << 20);
  EXPECT_DOUBLE_EQ(model.TransferSeconds(8), 4.0 * model.TransferSeconds(2));
}

TEST(DiskModelTest, BandwidthMatchesWrenIv) {
  DiskModel model(DiskModelParams{}, 1 << 20);
  // 1 MB transfer at 1.3 MB/s takes ~0.79 s.
  const double t = model.TransferSeconds((1 << 20) / kSectorSize);
  EXPECT_NEAR(t, (1 << 20) / 1.3e6, 1e-6);
}

TEST(MemoryDiskTest, ReadBackWritten) {
  SimClock clock;
  MemoryDisk disk(1024, &clock);
  auto data = Pattern(3 * kSectorSize, 7);
  ASSERT_TRUE(disk.WriteSectors(10, data).ok());
  std::vector<std::byte> out(3 * kSectorSize);
  ASSERT_TRUE(disk.ReadSectors(10, out).ok());
  EXPECT_EQ(out, data);
}

TEST(MemoryDiskTest, UnwrittenSectorsReadZero) {
  SimClock clock;
  MemoryDisk disk(64, &clock);
  std::vector<std::byte> out(kSectorSize, std::byte{0xEE});
  ASSERT_TRUE(disk.ReadSectors(5, out).ok());
  for (std::byte b : out) {
    EXPECT_EQ(b, std::byte{0});
  }
}

TEST(MemoryDiskTest, RejectsBadExtents) {
  SimClock clock;
  MemoryDisk disk(16, &clock);
  std::vector<std::byte> buffer(kSectorSize);
  EXPECT_EQ(disk.ReadSectors(16, buffer).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(disk.WriteSectors(15, Pattern(2 * kSectorSize, 1)).code(), ErrorCode::kOutOfRange);
  std::vector<std::byte> odd(100);
  EXPECT_EQ(disk.ReadSectors(0, odd).code(), ErrorCode::kInvalidArgument);
  std::vector<std::byte> empty;
  EXPECT_EQ(disk.ReadSectors(0, empty).code(), ErrorCode::kInvalidArgument);
}

TEST(MemoryDiskTest, ClockAdvancesWithIo) {
  SimClock clock;
  MemoryDisk disk(1 << 16, &clock);
  ASSERT_TRUE(disk.WriteSectors(1000, Pattern(kSectorSize, 0)).ok());
  const double after_random = clock.Now();
  EXPECT_GT(after_random, 0.0);
  // Sequential continuation is much cheaper than the seek was.
  ASSERT_TRUE(disk.WriteSectors(1001, Pattern(kSectorSize, 0)).ok());
  const double sequential_cost = clock.Now() - after_random;
  EXPECT_LT(sequential_cost, after_random / 10);
}

TEST(MemoryDiskTest, StatsTrackOpsAndSeeks) {
  SimClock clock;
  MemoryDisk disk(1 << 16, &clock);
  ASSERT_TRUE(disk.WriteSectors(100, Pattern(2 * kSectorSize, 0),
                                IoOptions{.synchronous = true}).ok());
  ASSERT_TRUE(disk.WriteSectors(102, Pattern(kSectorSize, 0)).ok());
  std::vector<std::byte> out(kSectorSize);
  ASSERT_TRUE(disk.ReadSectors(5000, out).ok());
  const DiskStats& stats = disk.stats();
  EXPECT_EQ(stats.write_ops, 2u);
  EXPECT_EQ(stats.read_ops, 1u);
  EXPECT_EQ(stats.sync_writes, 1u);
  EXPECT_EQ(stats.sectors_written, 3u);
  EXPECT_EQ(stats.sectors_read, 1u);
  EXPECT_EQ(stats.seeks, 2u);           // First write and the read.
  EXPECT_EQ(stats.sequential_ops, 1u);  // Second write continued at head.
  disk.ResetStats();
  EXPECT_EQ(disk.stats().write_ops, 0u);
}

TEST(MemoryDiskTest, LargeSequentialBeatsSmallRandomByOrderOfMagnitude) {
  // The core premise of the paper (Section 2.3): sequential I/O uses the
  // disk an order of magnitude more efficiently than small random I/O.
  SimClock clock;
  MemoryDisk disk(1 << 20, &clock);
  const size_t total_bytes = 1 << 20;

  // 1 MB as one sequential transfer.
  const double t0 = clock.Now();
  ASSERT_TRUE(disk.WriteSectors(0, Pattern(total_bytes, 0)).ok());
  const double seq_time = clock.Now() - t0;

  // 1 MB as 256 scattered 4 KB writes.
  const double t1 = clock.Now();
  auto chunk = Pattern(4096, 0);
  for (int i = 0; i < 256; ++i) {
    ASSERT_TRUE(disk.WriteSectors(((i * 2654435761u) % 100000) * 8, chunk).ok());
  }
  const double random_time = clock.Now() - t1;
  EXPECT_GT(random_time, 8 * seq_time);
}

TEST(FaultDiskTest, CrashAfterNWrites) {
  SimClock clock;
  MemoryDisk inner(1024, &clock);
  FaultInjectingDisk disk(&inner);
  disk.CrashAfterWrites(2);
  ASSERT_TRUE(disk.WriteSectors(0, Pattern(kSectorSize, 1)).ok());
  ASSERT_TRUE(disk.WriteSectors(1, Pattern(kSectorSize, 2)).ok());
  EXPECT_EQ(disk.WriteSectors(2, Pattern(kSectorSize, 3)).code(), ErrorCode::kCrashed);
  EXPECT_TRUE(disk.crashed());
  std::vector<std::byte> out(kSectorSize);
  EXPECT_EQ(disk.ReadSectors(0, out).code(), ErrorCode::kCrashed);
  // Reboot: data written before the crash survives.
  disk.Reset();
  ASSERT_TRUE(disk.ReadSectors(1, out).ok());
  EXPECT_EQ(out, Pattern(kSectorSize, 2));
  // The crashed write never reached the medium.
  ASSERT_TRUE(disk.ReadSectors(2, out).ok());
  for (std::byte b : out) {
    EXPECT_EQ(b, std::byte{0});
  }
}

TEST(FaultDiskTest, TornWriteKeepsPrefix) {
  SimClock clock;
  MemoryDisk inner(1024, &clock);
  FaultInjectingDisk disk(&inner);
  disk.CrashAfterWrites(0, /*torn_sectors=*/2);
  auto data = Pattern(4 * kSectorSize, 9);
  EXPECT_EQ(disk.WriteSectors(0, data).code(), ErrorCode::kCrashed);
  disk.Reset();
  std::vector<std::byte> out(4 * kSectorSize);
  ASSERT_TRUE(disk.ReadSectors(0, out).ok());
  // First two sectors made it; the rest did not.
  EXPECT_TRUE(std::equal(out.begin(), out.begin() + 2 * kSectorSize, data.begin()));
  for (size_t i = 2 * kSectorSize; i < out.size(); ++i) {
    EXPECT_EQ(out[i], std::byte{0});
  }
}

TEST(FaultDiskTest, CrashAfterSectorsTearsMidWrite) {
  SimClock clock;
  MemoryDisk inner(1024, &clock);
  FaultInjectingDisk disk(&inner);
  disk.CrashAfterSectors(3, /*torn=*/true);
  // 2 sectors fit the budget; the next 4-sector write tears after 1 more.
  auto first = Pattern(2 * kSectorSize, 1);
  auto second = Pattern(4 * kSectorSize, 7);
  ASSERT_TRUE(disk.WriteSectors(0, first).ok());
  EXPECT_EQ(disk.WriteSectors(10, second).code(), ErrorCode::kCrashed);
  EXPECT_TRUE(disk.crashed());
  disk.Reset();
  std::vector<std::byte> out(2 * kSectorSize);
  ASSERT_TRUE(disk.ReadSectors(0, out).ok());
  EXPECT_EQ(out, first);
  out.resize(4 * kSectorSize);
  ASSERT_TRUE(disk.ReadSectors(10, out).ok());
  EXPECT_TRUE(std::equal(out.begin(), out.begin() + kSectorSize, second.begin()));
  for (size_t i = kSectorSize; i < out.size(); ++i) {
    EXPECT_EQ(out[i], std::byte{0});
  }
}

TEST(FaultDiskTest, CrashAfterSectorsUntornDropsWholeRequest) {
  SimClock clock;
  MemoryDisk inner(1024, &clock);
  FaultInjectingDisk disk(&inner);
  disk.CrashAfterSectors(1, /*torn=*/false);
  auto data = Pattern(2 * kSectorSize, 3);
  EXPECT_EQ(disk.WriteSectors(0, data).code(), ErrorCode::kCrashed);
  disk.Reset();
  std::vector<std::byte> out(2 * kSectorSize);
  ASSERT_TRUE(disk.ReadSectors(0, out).ok());
  for (std::byte b : out) {
    EXPECT_EQ(b, std::byte{0});
  }
}

TEST(FaultDiskTest, CrashAfterSectorsExactBudgetCompletesTheWrite) {
  SimClock clock;
  MemoryDisk inner(1024, &clock);
  FaultInjectingDisk disk(&inner);
  disk.CrashAfterSectors(2, /*torn=*/true);
  auto data = Pattern(2 * kSectorSize, 5);
  ASSERT_TRUE(disk.WriteSectors(0, data).ok());  // Lands exactly on the budget.
  EXPECT_EQ(disk.WriteSectors(2, Pattern(kSectorSize, 6)).code(), ErrorCode::kCrashed);
  disk.Reset();
  std::vector<std::byte> out(2 * kSectorSize);
  ASSERT_TRUE(disk.ReadSectors(0, out).ok());
  EXPECT_EQ(out, data);
  out.resize(kSectorSize);
  ASSERT_TRUE(disk.ReadSectors(2, out).ok());
  for (std::byte b : out) {
    EXPECT_EQ(b, std::byte{0});
  }
}

TEST(FaultDiskTest, CrashNowStopsEverything) {
  SimClock clock;
  MemoryDisk inner(64, &clock);
  FaultInjectingDisk disk(&inner);
  disk.CrashNow();
  EXPECT_EQ(disk.Flush().code(), ErrorCode::kCrashed);
}

// --- media-fault modes: each read behavior pinned per the fault_disk.h
// contract (crashed -> kCrashed; transient -> kIoError once, retry succeeds
// with correct data; bad sector -> kMediaError every attempt; silent
// corruption -> kOk with wrong bytes).

TEST(FaultDiskTest, BadSectorsFailPersistentlyWithMediaError) {
  SimClock clock;
  MemoryDisk inner(1024, &clock);
  FaultInjectingDisk disk(&inner);
  auto data = Pattern(4 * kSectorSize, 3);
  ASSERT_TRUE(disk.WriteSectors(0, data).ok());
  disk.MarkBadSectors(2, 1);
  std::vector<std::byte> out(4 * kSectorSize);
  // Every attempt fails — retrying a persistent fault cannot help.
  for (int attempt = 0; attempt < 3; ++attempt) {
    EXPECT_EQ(disk.ReadSectors(0, out).code(), ErrorCode::kMediaError);
  }
  EXPECT_EQ(disk.WriteSectors(2, Pattern(kSectorSize, 4)).code(), ErrorCode::kMediaError);
  EXPECT_EQ(disk.media_errors_injected(), 4u);
  // Requests not touching the bad sector are unaffected.
  out.resize(2 * kSectorSize);
  ASSERT_TRUE(disk.ReadSectors(0, out).ok());
  EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin()));
  // The damage survives a reboot but can be explicitly cleared.
  disk.Reset();
  out.resize(4 * kSectorSize);
  EXPECT_EQ(disk.ReadSectors(0, out).code(), ErrorCode::kMediaError);
  disk.ClearBadSectors();
  EXPECT_TRUE(disk.ReadSectors(0, out).ok());
}

TEST(FaultDiskTest, BadSectorModeSeparatesReadsFromWrites) {
  SimClock clock;
  MemoryDisk inner(64, &clock);
  FaultInjectingDisk disk(&inner);
  disk.MarkBadSectors(0, 1, FaultInjectingDisk::BadSectorMode::kWrite);
  std::vector<std::byte> out(kSectorSize);
  EXPECT_TRUE(disk.ReadSectors(0, out).ok());
  EXPECT_EQ(disk.WriteSectors(0, Pattern(kSectorSize, 1)).code(), ErrorCode::kMediaError);
  disk.ClearBadSectors();
  disk.MarkBadSectors(1, 1, FaultInjectingDisk::BadSectorMode::kRead);
  EXPECT_TRUE(disk.WriteSectors(1, Pattern(kSectorSize, 2)).ok());
  EXPECT_EQ(disk.ReadSectors(1, out).code(), ErrorCode::kMediaError);
}

TEST(FaultDiskTest, OneShotTransientReadFailsOnceThenRetrySucceeds) {
  SimClock clock;
  MemoryDisk inner(64, &clock);
  FaultInjectingDisk disk(&inner);
  auto data = Pattern(kSectorSize, 8);
  ASSERT_TRUE(disk.WriteSectors(5, data).ok());
  std::vector<std::byte> out(kSectorSize);
  ASSERT_TRUE(disk.ReadSectors(5, out).ok());  // Read request #0.
  disk.FailNthRead(disk.read_requests_seen());  // Fail the next read.
  EXPECT_EQ(disk.ReadSectors(5, out).code(), ErrorCode::kIoError);
  // The retry of the exact same request succeeds with correct data.
  ASSERT_TRUE(disk.ReadSectors(5, out).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(disk.transient_read_errors_injected(), 1u);
}

TEST(FaultDiskTest, OneShotTransientWriteFailsOnceWithoutTransferring) {
  SimClock clock;
  MemoryDisk inner(64, &clock);
  FaultInjectingDisk disk(&inner);
  auto data = Pattern(kSectorSize, 9);
  disk.FailNthWrite(disk.write_requests_seen());
  EXPECT_EQ(disk.WriteSectors(7, data).code(), ErrorCode::kIoError);
  // The failed request transferred nothing...
  std::vector<std::byte> out(kSectorSize);
  ASSERT_TRUE(disk.ReadSectors(7, out).ok());
  for (std::byte b : out) {
    EXPECT_EQ(b, std::byte{0});
  }
  // ...but still counted as a request, and the retry lands.
  EXPECT_EQ(disk.write_requests_seen(), 1u);
  ASSERT_TRUE(disk.WriteSectors(7, data).ok());
  ASSERT_TRUE(disk.ReadSectors(7, out).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(disk.transient_write_errors_injected(), 1u);
}

TEST(FaultDiskTest, SeededTransientRatesAreDeterministic) {
  SimClock clock;
  auto run = [&clock](uint64_t seed) {
    MemoryDisk inner(1024, &clock);
    FaultInjectingDisk disk(&inner);
    disk.SetTransientErrorRates(seed, 0.3, 0.0);
    std::vector<std::byte> out(kSectorSize);
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(disk.ReadSectors(0, out).ok());
    }
    return outcomes;
  };
  EXPECT_EQ(run(42), run(42));         // Same seed, same fault schedule.
  EXPECT_NE(run(42), run(43));         // Different seed, different schedule.
  MemoryDisk inner(1024, &clock);
  FaultInjectingDisk disk(&inner);
  disk.SetTransientErrorRates(7, 0.5, 0.0);
  std::vector<std::byte> out(kSectorSize);
  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    failures += disk.ReadSectors(0, out).ok() ? 0 : 1;
  }
  EXPECT_GT(failures, 0);
  EXPECT_LT(failures, 200);
  EXPECT_EQ(static_cast<uint64_t>(failures), disk.transient_read_errors_injected());
}

TEST(FaultDiskTest, SilentCorruptionReturnsOkWithWrongBytes) {
  SimClock clock;
  MemoryDisk inner(64, &clock);
  FaultInjectingDisk disk(&inner);
  auto data = Pattern(2 * kSectorSize, 5);
  ASSERT_TRUE(disk.WriteSectors(4, data).ok());
  disk.CorruptSector(5, /*byte_offset=*/17, /*xor_mask=*/0x40);
  std::vector<std::byte> out(2 * kSectorSize);
  ASSERT_TRUE(disk.ReadSectors(4, out).ok());  // Reports success...
  auto expected = data;
  expected[kSectorSize + 17] ^= std::byte{0x40};  // ...with flipped bytes.
  EXPECT_EQ(out, expected);
  EXPECT_EQ(disk.corruptions_applied(), 1u);
  // The inner medium is untouched: clearing the fault restores the truth.
  disk.ClearCorruption();
  ASSERT_TRUE(disk.ReadSectors(4, out).ok());
  EXPECT_EQ(out, data);
}

TEST(FaultDiskTest, VectoredReadsSeeTheSameFaults) {
  SimClock clock;
  MemoryDisk inner(64, &clock);
  FaultInjectingDisk disk(&inner);
  auto data = Pattern(2 * kSectorSize, 6);
  ASSERT_TRUE(disk.WriteSectors(0, data).ok());
  std::vector<std::byte> a(kSectorSize);
  std::vector<std::byte> b(kSectorSize);
  std::vector<std::span<std::byte>> bufs = {a, b};
  // Corruption lands in whichever buffer holds the affected sector.
  disk.CorruptSector(1, 3, 0xFF);
  ASSERT_TRUE(disk.ReadSectorsV(0, bufs).ok());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), data.begin()));
  EXPECT_EQ(b[3], data[kSectorSize + 3] ^ std::byte{0xFF});
  // Bad sectors fail the whole vectored request atomically.
  disk.MarkBadSectors(1, 1);
  EXPECT_EQ(disk.ReadSectorsV(0, bufs).code(), ErrorCode::kMediaError);
  // Crashed beats everything.
  disk.CrashNow();
  EXPECT_EQ(disk.ReadSectorsV(0, bufs).code(), ErrorCode::kCrashed);
}

TEST(TracingDiskTest, RecordsRequests) {
  SimClock clock;
  MemoryDisk inner(4096, &clock);
  TracingDisk disk(&inner, &clock);
  ASSERT_TRUE(disk.WriteSectors(0, Pattern(2 * kSectorSize, 0),
                                IoOptions{.synchronous = true}).ok());
  ASSERT_TRUE(disk.WriteSectors(2, Pattern(kSectorSize, 0)).ok());
  ASSERT_TRUE(disk.WriteSectors(100, Pattern(kSectorSize, 0)).ok());
  std::vector<std::byte> out(kSectorSize);
  ASSERT_TRUE(disk.ReadSectors(0, out).ok());

  ASSERT_EQ(disk.trace().size(), 4u);
  EXPECT_EQ(disk.WriteRequestCount(), 3u);
  EXPECT_EQ(disk.SyncWriteRequestCount(), 1u);
  // Second write continued at sector 2 (sequential); writes 1 and 3 did not.
  EXPECT_EQ(disk.NonSequentialWriteCount(), 2u);
  EXPECT_TRUE(disk.trace()[1].sequential);
  EXPECT_FALSE(disk.trace()[2].sequential);
  disk.ClearTrace();
  EXPECT_TRUE(disk.trace().empty());
}

TEST(StripedDiskTest, ReadBackAcrossStripeBoundaries) {
  SimClock clock;
  StripedDisk array(4, 1024, /*stripe_sectors=*/8, &clock);
  EXPECT_EQ(array.sector_count(), 4096u);
  // A write spanning several stripes round-trips bit-exactly.
  auto data = Pattern(40 * kSectorSize, 3);
  ASSERT_TRUE(array.WriteSectors(5, data).ok());
  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(array.ReadSectors(5, out).ok());
  EXPECT_EQ(out, data);
  // Unwritten regions read zero.
  std::vector<std::byte> hole(kSectorSize);
  ASSERT_TRUE(array.ReadSectors(2000, hole).ok());
  for (std::byte b : hole) {
    EXPECT_EQ(b, std::byte{0});
  }
}

TEST(StripedDiskTest, RejectsBadExtents) {
  SimClock clock;
  StripedDisk array(2, 64, 8, &clock);
  std::vector<std::byte> buffer(kSectorSize);
  EXPECT_EQ(array.ReadSectors(128, buffer).code(), ErrorCode::kOutOfRange);
  std::vector<std::byte> odd(100);
  EXPECT_EQ(array.ReadSectors(0, odd).code(), ErrorCode::kInvalidArgument);
}

TEST(StripedDiskTest, SequentialBandwidthScalesWithMembers) {
  // The paper's Section 2.1 asymmetry: arrays raise bandwidth, not access
  // time. A large transfer must finish ~N times faster on N members.
  auto time_large_write = [](uint32_t members) {
    SimClock clock;
    StripedDisk array(members, 1 << 16, /*stripe_sectors=*/128, &clock);
    std::vector<std::byte> data(4 << 20, std::byte{0x11});
    (void)array.WriteSectors(0, data);
    return clock.Now();
  };
  const double one = time_large_write(1);
  const double four = time_large_write(4);
  EXPECT_GT(one / four, 3.0);
  EXPECT_LT(one / four, 5.0);
}

TEST(StripedDiskTest, SmallAccessLatencyDoesNotImprove) {
  auto time_small_random_ops = [](uint32_t members) {
    SimClock clock;
    StripedDisk array(members, 1 << 16, /*stripe_sectors=*/128, &clock);
    std::vector<std::byte> sector(kSectorSize, std::byte{0x22});
    for (int i = 0; i < 50; ++i) {
      (void)array.WriteSectors((i * 7919) % (1 << 15), sector);
    }
    return clock.Now();
  };
  const double one = time_small_random_ops(1);
  const double four = time_small_random_ops(4);
  // Small scattered accesses gain little from the array (each op still pays
  // a full positioning delay on some member).
  EXPECT_GT(four, one * 0.5);
}

TEST(StripedDiskTest, LfsRunsOnAnArray) {
  // The whole file system stack works unchanged on RAID-0, and its large
  // sequential segment writes are what actually harvests the array's
  // bandwidth.
  SimClock clock;
  StripedDisk array(4, 32768, /*stripe_sectors=*/256, &clock);
  LfsParams params;
  params.max_inodes = 2048;
  ASSERT_TRUE(LfsFileSystem::Format(&array, params).ok());
  auto fs = LfsFileSystem::Mount(&array, &clock, nullptr);
  ASSERT_TRUE(fs.ok());
  PathFs paths(fs->get());
  auto data = Pattern(1 << 20, 9);
  ASSERT_TRUE(paths.WriteFile("/striped", data).ok());
  ASSERT_TRUE((*fs)->Sync().ok());
  ASSERT_TRUE((*fs)->DropCaches().ok());
  auto back = paths.ReadFile("/striped");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

}  // namespace
}  // namespace logfs
