// Flight-recorder tests: sampler cadence and delta/ring semantics, quantile
// estimation, the TelemetryRing wire codec (round-trip, corruption
// rejection, fold-to-fit budgets), the black-box trailer codec, the
// compiled-out no-op contract, the write-cost clamp regression, and the
// end-to-end on-disk black box + per-op latency attribution of a live LFS.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>

#include "src/lfs/lfs_blackbox.h"
#include "src/lfs/lfs_cleaner.h"
#include "src/obs/metrics.h"
#include "src/obs/sampler.h"
#include "tests/fs_fixture.h"

namespace logfs {
namespace {

class SamplerTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::Registry().ResetAll(); }
};

// --- sampler cadence and ring semantics ------------------------------------------

TEST_F(SamplerTest, CadenceFiresFirstCallThenPerInterval) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::MetricsRegistry registry;
  obs::TelemetrySampler sampler({.interval_seconds = 1.0, .capacity = 16}, &registry);
  EXPECT_TRUE(sampler.MaybeSample(0.0));   // First call always fires.
  EXPECT_FALSE(sampler.MaybeSample(0.5));  // Before the deadline.
  EXPECT_FALSE(sampler.MaybeSample(0.99));
  EXPECT_TRUE(sampler.MaybeSample(1.0));  // On the deadline.
  // A large jump fires once, not once per elapsed interval.
  EXPECT_TRUE(sampler.MaybeSample(100.0));
  EXPECT_FALSE(sampler.MaybeSample(100.5));
  EXPECT_EQ(sampler.size(), 3u);
  EXPECT_EQ(sampler.total_samples(), 3u);
}

TEST_F(SamplerTest, DeltasRatesAndAbsoluteValues) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.GetCounter("t.ops");
  obs::TelemetrySampler sampler({.interval_seconds = 1.0, .capacity = 16}, &registry);

  c.Increment(10);
  sampler.SampleNow(1.0);
  c.Increment(30);
  sampler.SampleNow(2.0);
  c.Increment(5);
  sampler.SampleNow(4.0);

  const obs::TelemetryRing ring = sampler.Ring();
  ASSERT_EQ(ring.counter_names.size(), 1u);
  EXPECT_EQ(ring.counter_names[0], "t.ops");
  ASSERT_EQ(ring.samples.size(), 3u);
  EXPECT_EQ(ring.samples[0].counter_deltas[0], 10u);
  EXPECT_EQ(ring.samples[1].counter_deltas[0], 30u);
  EXPECT_EQ(ring.samples[2].counter_deltas[0], 5u);
  EXPECT_EQ(ring.CounterAt(0, 0), 10u);
  EXPECT_EQ(ring.CounterAt(1, 0), 40u);
  EXPECT_EQ(ring.CounterAt(2, 0), 45u);
  // Rates: delta over the interval to the previous retained sample.
  EXPECT_DOUBLE_EQ(ring.RateAt(1, 0), 30.0);       // 30 ops in 1 s.
  EXPECT_DOUBLE_EQ(ring.RateAt(2, 0), 2.5);        // 5 ops in 2 s.
}

TEST_F(SamplerTest, EvictionFoldsOldestIntoBaseKeepingAbsolutesExact) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.GetCounter("t.ops");
  obs::TelemetrySampler sampler({.interval_seconds = 1.0, .capacity = 4}, &registry);
  for (int i = 1; i <= 10; ++i) {
    c.Increment(static_cast<uint64_t>(i));  // Absolute value = i*(i+1)/2.
    sampler.SampleNow(static_cast<double>(i));
  }
  EXPECT_EQ(sampler.size(), 4u);
  EXPECT_EQ(sampler.total_samples(), 10u);
  const obs::TelemetryRing ring = sampler.Ring();
  ASSERT_EQ(ring.samples.size(), 4u);
  // Samples 1..6 were folded into the base; absolutes must still be exact.
  EXPECT_EQ(ring.base_counters[0], 21u);  // 1+2+...+6
  EXPECT_DOUBLE_EQ(ring.base_time, 6.0);  // Time of the last evicted sample.
  EXPECT_EQ(ring.CounterAt(3, 0), 55u);   // 1+2+...+10
  EXPECT_DOUBLE_EQ(ring.RateAt(0, 0), 7.0);  // First retained: vs base_time.
}

TEST_F(SamplerTest, CounterResetBetweenPhasesRecordsZeroDeltaNotUnderflow) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.GetCounter("t.ops");
  obs::TelemetrySampler sampler({.interval_seconds = 1.0, .capacity = 8}, &registry);
  c.Increment(100);
  sampler.SampleNow(1.0);
  registry.ResetAll();  // A bench phase boundary.
  c.Increment(3);
  sampler.SampleNow(2.0);
  const obs::TelemetryRing ring = sampler.Ring();
  ASSERT_EQ(ring.samples.size(), 2u);
  EXPECT_EQ(ring.samples[1].counter_deltas[0], 0u);  // Not ~2^64.
}

// --- quantile estimation ---------------------------------------------------------

TEST(HistogramQuantileTest, InterpolatesWithinBuckets) {
  obs::MetricsSnapshot::HistogramValue hv;
  hv.bounds = {10.0, 20.0, 40.0};
  hv.buckets = {10, 10, 0, 0};  // 20 observations, none in overflow.
  hv.count = 20;
  // Rank 10 (p50) sits exactly at the top of bucket 0.
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(hv, 0.50), 10.0);
  // p75 -> rank 15, halfway through bucket 1 (10, 20].
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(hv, 0.75), 15.0);
  // p100 -> top of the last occupied bucket.
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(hv, 1.0), 20.0);
  // p25 -> rank 5, halfway through bucket 0 [0, 10].
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(hv, 0.25), 5.0);
}

TEST(HistogramQuantileTest, OverflowBucketClampsToLastFiniteBound) {
  obs::MetricsSnapshot::HistogramValue hv;
  hv.bounds = {1.0, 2.0};
  hv.buckets = {1, 1, 8};  // Most mass above every bound.
  hv.count = 10;
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(hv, 0.99), 2.0);
}

TEST(HistogramQuantileTest, EmptyAndClampedInputs) {
  obs::MetricsSnapshot::HistogramValue hv;
  hv.bounds = {1.0};
  hv.buckets = {0, 0};
  hv.count = 0;
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(hv, 0.5), 0.0);
  hv.buckets = {4, 0};
  hv.count = 4;
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(hv, -1.0), obs::HistogramQuantile(hv, 0.0));
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(hv, 2.0), obs::HistogramQuantile(hv, 1.0));
}

TEST_F(SamplerTest, SamplesCarryHistogramQuantiles) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::MetricsRegistry registry;
  const double bounds[] = {1.0, 10.0};
  obs::Histogram& h = registry.GetHistogram("t.lat", bounds);
  for (int i = 0; i < 10; ++i) {
    h.Observe(0.5);
  }
  obs::TelemetrySampler sampler({}, &registry);
  sampler.SampleNow(1.0);
  const obs::TelemetryRing ring = sampler.Ring();
  ASSERT_EQ(ring.hist_names.size(), 1u);
  ASSERT_EQ(ring.samples.size(), 1u);
  const obs::TelemetrySample::HistState& hs = ring.samples[0].hists[0];
  EXPECT_EQ(hs.count, 10u);
  EXPECT_DOUBLE_EQ(hs.sum, 5.0);
  EXPECT_DOUBLE_EQ(hs.p50, 0.5);  // All mass in [0, 1]: rank 5 of 10 -> 0.5.
  EXPECT_GT(hs.p99, hs.p50 - 1e-12);
}

// --- wire codec ------------------------------------------------------------------

// A hand-built ring exercises the codec without the registry, so these run
// in both metrics configurations.
obs::TelemetryRing MakeRing() {
  obs::TelemetryRing ring;
  ring.seq = 7;
  ring.base_time = 0.5;
  ring.counter_names = {"a.ops", "b.bytes"};
  ring.gauge_names = {"g.util"};
  ring.hist_names = {"h.lat"};
  ring.base_counters = {100, 5000};
  for (int i = 0; i < 3; ++i) {
    obs::TelemetrySample s;
    s.t = 1.0 + i;
    s.counter_deltas = {static_cast<uint64_t>(10 + i), static_cast<uint64_t>(1000 * i)};
    s.gauges = {0.25 * i};
    s.hists = {{static_cast<uint64_t>(5 * i), 2.5 * i, 0.1, 0.2, 0.3}};
    ring.samples.push_back(std::move(s));
  }
  return ring;
}

TEST(TelemetryRingCodecTest, EncodeDecodeRoundTrip) {
  const obs::TelemetryRing ring = MakeRing();
  const std::vector<std::byte> blob = ring.Encode(64 * 1024);
  ASSERT_FALSE(blob.empty());
  auto decoded = obs::TelemetryRing::Decode(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->seq, ring.seq);
  EXPECT_DOUBLE_EQ(decoded->base_time, ring.base_time);
  EXPECT_EQ(decoded->counter_names, ring.counter_names);
  EXPECT_EQ(decoded->gauge_names, ring.gauge_names);
  EXPECT_EQ(decoded->hist_names, ring.hist_names);
  EXPECT_EQ(decoded->base_counters, ring.base_counters);
  ASSERT_EQ(decoded->samples.size(), ring.samples.size());
  for (size_t i = 0; i < ring.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(decoded->samples[i].t, ring.samples[i].t);
    EXPECT_EQ(decoded->samples[i].counter_deltas, ring.samples[i].counter_deltas);
    ASSERT_EQ(decoded->samples[i].hists.size(), 1u);
    EXPECT_EQ(decoded->samples[i].hists[0].count, ring.samples[i].hists[0].count);
    EXPECT_DOUBLE_EQ(decoded->samples[i].hists[0].p99, ring.samples[i].hists[0].p99);
  }
  // Absolute reconstruction across the boundary.
  EXPECT_EQ(decoded->CounterAt(2, 0), 100u + 10 + 11 + 12);
}

TEST(TelemetryRingCodecTest, DecodeRejectsCorruption) {
  const obs::TelemetryRing ring = MakeRing();
  std::vector<std::byte> blob = ring.Encode(64 * 1024);
  ASSERT_FALSE(blob.empty());

  // Any flipped byte must trip the CRC (or the magic check).
  for (size_t victim : {size_t{0}, size_t{16}, blob.size() - 1}) {
    std::vector<std::byte> bad = blob;
    bad[victim] ^= std::byte{0x01};
    EXPECT_FALSE(obs::TelemetryRing::Decode(bad).ok()) << "victim byte " << victim;
  }
  // Truncation must fail cleanly, not read out of bounds.
  for (size_t len : {size_t{0}, size_t{4}, size_t{11}, blob.size() - 1}) {
    EXPECT_FALSE(
        obs::TelemetryRing::Decode(std::span<const std::byte>(blob).subspan(0, len)).ok())
        << "truncated to " << len;
  }
}

TEST(TelemetryRingCodecTest, EncodeFoldsOldestSamplesToFitBudget) {
  const obs::TelemetryRing ring = MakeRing();
  const std::vector<std::byte> full = ring.Encode(64 * 1024);
  ASSERT_FALSE(full.empty());

  // A budget below the full size forces folding; the result must still be a
  // valid ring whose final absolute values are unchanged.
  const std::vector<std::byte> squeezed = ring.Encode(full.size() - 1);
  ASSERT_FALSE(squeezed.empty());
  ASSERT_LT(squeezed.size(), full.size());
  auto decoded = obs::TelemetryRing::Decode(squeezed);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_LT(decoded->samples.size(), ring.samples.size());
  const size_t last = decoded->samples.size() - 1;
  EXPECT_EQ(decoded->CounterAt(last, 0), ring.CounterAt(ring.samples.size() - 1, 0));
  EXPECT_EQ(decoded->CounterAt(last, 1), ring.CounterAt(ring.samples.size() - 1, 1));

  // A budget too small for even the name tables degrades to a bare header...
  const std::vector<std::byte> bare = ring.Encode(48);
  ASSERT_FALSE(bare.empty());
  auto bare_ring = obs::TelemetryRing::Decode(bare);
  ASSERT_TRUE(bare_ring.ok()) << bare_ring.status().ToString();
  EXPECT_EQ(bare_ring->seq, ring.seq);
  EXPECT_TRUE(bare_ring->samples.empty());
  // ...and a budget below even that returns empty (caller skips embedding).
  EXPECT_TRUE(ring.Encode(8).empty());
}

TEST_F(SamplerTest, SerializeRingBumpsSequence) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::MetricsRegistry registry;
  registry.GetCounter("t.ops").Increment();
  obs::TelemetrySampler sampler({}, &registry);
  sampler.SampleNow(1.0);
  const std::vector<std::byte> first = sampler.SerializeRing(64 * 1024);
  const std::vector<std::byte> second = sampler.SerializeRing(64 * 1024);
  auto a = obs::TelemetryRing::Decode(first);
  auto b = obs::TelemetryRing::Decode(second);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->seq, a->seq + 1);  // Freshest ring wins at recovery.
}

// --- compiled-out contract -------------------------------------------------------

TEST(SamplerOffTest, CompiledOutSamplerIsANoOp) {
  if (obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled in";
  obs::TelemetrySampler sampler({.interval_seconds = 0.001, .capacity = 4});
  EXPECT_FALSE(sampler.MaybeSample(0.0));
  sampler.SampleNow(1.0);
  EXPECT_EQ(sampler.size(), 0u);
  EXPECT_EQ(sampler.total_samples(), 0u);
  EXPECT_TRUE(sampler.SerializeRing(64 * 1024).empty());  // Nothing embedded.
}

// --- black-box trailer codec -----------------------------------------------------

TEST(BlackBoxTest, CapacityAccountsForPayloadAndFooter) {
  EXPECT_EQ(BlackBoxCapacity(4096, 100), 4096u - 100 - kBlackBoxFooterBytes);
  EXPECT_EQ(BlackBoxCapacity(100, 100), 0u);  // No room for even the footer.
  EXPECT_EQ(BlackBoxCapacity(100, 90), 0u);
  EXPECT_EQ(BlackBoxCapacity(116, 100), 0u);  // Footer fits, blob space is 0.
}

TEST(BlackBoxTest, EmbedExtractRoundTrip) {
  std::vector<std::byte> region(4096, std::byte{0xAA});  // Dirty slack is fine.
  const obs::TelemetryRing ring = MakeRing();
  const std::vector<std::byte> blob = ring.Encode(BlackBoxCapacity(region.size(), 200));
  ASSERT_FALSE(blob.empty());
  ASSERT_TRUE(EmbedBlackBox(region, 200, blob).ok());

  auto extracted = ExtractBlackBox(region);
  ASSERT_TRUE(extracted.ok()) << extracted.status().ToString();
  ASSERT_EQ(extracted->size(), blob.size());
  EXPECT_EQ(std::memcmp(extracted->data(), blob.data(), blob.size()), 0);
  // And the blob itself still decodes.
  EXPECT_TRUE(obs::TelemetryRing::Decode(*extracted).ok());
  // The checkpoint payload prefix was not touched.
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(region[i], std::byte{0xAA});
  }
}

TEST(BlackBoxTest, ExtractRejectsDamage) {
  std::vector<std::byte> region(4096, std::byte{0});
  const std::vector<std::byte> blob = MakeRing().Encode(1024);
  ASSERT_TRUE(EmbedBlackBox(region, 0, blob).ok());

  {
    std::vector<std::byte> bad = region;
    bad[bad.size() - 1] ^= std::byte{0x01};  // Magic.
    EXPECT_FALSE(ExtractBlackBox(bad).ok());
  }
  {
    std::vector<std::byte> bad = region;
    bad[bad.size() - kBlackBoxFooterBytes - 1] ^= std::byte{0x01};  // Blob body.
    EXPECT_FALSE(ExtractBlackBox(bad).ok());
  }
  {
    std::vector<std::byte> no_trailer(4096, std::byte{0});
    EXPECT_FALSE(ExtractBlackBox(no_trailer).ok());
  }
}

TEST(BlackBoxTest, EmbedRejectsBlobCollidingWithPayload) {
  std::vector<std::byte> region(256, std::byte{0});
  std::vector<std::byte> blob(300);  // Bigger than the region.
  EXPECT_FALSE(EmbedBlackBox(region, 0, blob).ok());
  std::vector<std::byte> blob2(region.size() - kBlackBoxFooterBytes - 10 + 1);
  EXPECT_FALSE(EmbedBlackBox(region, 10, blob2).ok());  // One byte too many.
  std::vector<std::byte> blob3(region.size() - kBlackBoxFooterBytes - 10);
  EXPECT_TRUE(EmbedBlackBox(region, 10, blob3).ok());  // Exact fit.
}

// --- write-cost clamp regression -------------------------------------------------

TEST(WriteCostClampTest, FiniteAtFullUtilizationIdentityBelowCap) {
  // The raw formula diverges at u=1; the clamp must keep the gauge (and any
  // JSON it lands in) finite.
  EXPECT_TRUE(std::isfinite(PaperWriteCost(1.0)));
  EXPECT_TRUE(std::isfinite(PaperWriteCost(1.5)));  // Defensive: u > 1.
  EXPECT_GT(PaperWriteCost(1.0), 1e6);              // Still "enormous".
  // Below the cap the clamp is exact identity with the paper formula.
  for (double u : {0.1, 0.5, 0.75, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(PaperWriteCost(u), 1.0 + u / (1.0 - u) + 1.0 / (1.0 - u));
  }
  EXPECT_DOUBLE_EQ(PaperWriteCost(0.0), 2.0);
  EXPECT_DOUBLE_EQ(PaperWriteCost(-1.0), 2.0);
  EXPECT_DOUBLE_EQ(PaperWriteCost(std::nan("")), 2.0);
}

TEST_F(SamplerTest, ExportersEmitQuantilesAndFiniteJson) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  const double bounds[] = {1.0, 10.0};
  obs::Histogram& h = obs::Registry().GetHistogram("t.export.lat", bounds);
  for (int i = 0; i < 100; ++i) {
    h.Observe(0.5);
  }
  const std::string json = obs::Registry().ToJson();
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p90\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  const std::string text = obs::Registry().ToText();
  EXPECT_NE(text.find("t.export.lat.p50"), std::string::npos);
  EXPECT_NE(text.find("t.export.lat.p99"), std::string::npos);

  // Regression: a non-finite gauge must export as JSON null, never inf/nan.
  obs::Registry().GetGauge("t.export.bad").Set(INFINITY);
  const std::string with_inf = obs::Registry().ToJson();
  EXPECT_EQ(with_inf.find("inf"), std::string::npos);
  EXPECT_NE(with_inf.find("\"t.export.bad\": null"), std::string::npos);
}

// --- end-to-end: live LFS ---------------------------------------------------------

TEST_F(SamplerTest, BlackBoxPersistsAcrossCheckpointsAndRecoversFromRawImage) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  LfsInstance inst;
  ASSERT_TRUE(inst.paths->WriteFile("/a", TestBytes(8192, 1)).ok());
  ASSERT_TRUE(inst.fs->Sync().ok());

  auto first = RecoverBlackBoxFromImage(inst.disk->RawImage());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_GE(first->region, 0);
  EXPECT_LE(first->region, 1);

  ASSERT_TRUE(inst.paths->WriteFile("/b", TestBytes(8192, 2)).ok());
  ASSERT_TRUE(inst.fs->Sync().ok());
  auto second = RecoverBlackBoxFromImage(inst.disk->RawImage());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_GT(second->ring.seq, first->ring.seq);  // Freshest write wins.
  EXPECT_FALSE(second->ring.samples.empty());    // Checkpoint sampled first.

  // The device-based recovery agrees with the image-based one.
  auto via_device = RecoverBlackBox(inst.disk.get());
  ASSERT_TRUE(via_device.ok());
  EXPECT_EQ(via_device->ring.seq, second->ring.seq);
}

TEST_F(SamplerTest, PerOpAttributionCountersAndHistogramsPublished) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  LfsInstance inst;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        inst.paths->WriteFile("/f" + std::to_string(i), TestBytes(8192, i)).ok());
  }
  ASSERT_TRUE(inst.fs->Sync().ok());
  auto read_back = inst.paths->ReadFile("/f3");
  ASSERT_TRUE(read_back.ok());

  const obs::Counter* writes = obs::Registry().FindCounter("logfs.op.write.count");
  const obs::Counter* creates = obs::Registry().FindCounter("logfs.op.create.count");
  const obs::Counter* reads = obs::Registry().FindCounter("logfs.op.read.count");
  const obs::Counter* syncs = obs::Registry().FindCounter("logfs.op.sync.count");
  ASSERT_NE(writes, nullptr);
  ASSERT_NE(creates, nullptr);
  ASSERT_NE(reads, nullptr);
  ASSERT_NE(syncs, nullptr);
  EXPECT_GE(writes->Value(), 20u);
  EXPECT_GE(creates->Value(), 20u);
  EXPECT_GE(reads->Value(), 1u);
  EXPECT_GE(syncs->Value(), 1u);

  // Sync writes segments + a checkpoint: its disk component must be nonzero.
  const obs::Counter* sync_disk = obs::Registry().FindCounter("logfs.op.sync.disk_us");
  ASSERT_NE(sync_disk, nullptr);
  EXPECT_GT(sync_disk->Value(), 0u);

  // The latency histogram exists and saw every sync.
  const obs::Histogram* sync_hist = obs::Registry().FindHistogram("logfs.op.sync.seconds");
  ASSERT_NE(sync_hist, nullptr);
  EXPECT_EQ(sync_hist->Count(), syncs->Value());

  // Attribution components never exceed the measured total (in microseconds;
  // each bucket is clamped non-negative and cache/CPU absorbs the remainder,
  // so the parts must sum to <= total with rounding slack).
  const obs::Histogram* write_hist =
      obs::Registry().FindHistogram("logfs.op.write.seconds");
  ASSERT_NE(write_hist, nullptr);
  const obs::Counter* w_disk = obs::Registry().FindCounter("logfs.op.write.disk_us");
  const obs::Counter* w_clean = obs::Registry().FindCounter("logfs.op.write.cleaner_us");
  const obs::Counter* w_retry = obs::Registry().FindCounter("logfs.op.write.retry_us");
  const obs::Counter* w_cache = obs::Registry().FindCounter("logfs.op.write.cache_us");
  ASSERT_NE(w_disk, nullptr);
  ASSERT_NE(w_clean, nullptr);
  ASSERT_NE(w_retry, nullptr);
  ASSERT_NE(w_cache, nullptr);
  const double total_us = write_hist->Sum() * 1e6;
  const double parts = static_cast<double>(w_disk->Value() + w_clean->Value() +
                                           w_retry->Value() + w_cache->Value());
  EXPECT_LE(parts, total_us + static_cast<double>(4 * writes->Value()));
}

}  // namespace
}  // namespace logfs
