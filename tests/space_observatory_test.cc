// Space-observatory tests: the exact-sum attribution invariant (every
// acknowledged device write is attributed to exactly one provenance class,
// so the per-source counters sum to the device's own write totals) across
// single-shard, multi-shard, crash-recovery, and fault-injection runs; a
// concurrent-attribution run for TSan; segment lifecycle/age/heat telemetry;
// the utilization-distribution gauges; and the SegmentUsageTable edge cases
// (heat EWMA folding, memory-only heat across encode/decode, and the
// live-bytes underflow clamp).
#include <gtest/gtest.h>

#include <thread>

#include "src/disk/fault_disk.h"
#include "src/disk/memory_disk.h"
#include "src/disk/resilient_disk.h"
#include "src/lfs/lfs_seg_usage.h"
#include "src/lfs/sharded_lfs.h"
#include "src/obs/metrics.h"
#include "src/obs/space_observatory.h"
#include "src/workload/concurrent_driver.h"
#include "tests/fs_fixture.h"

namespace logfs {
namespace {

// The attribution counters are process-wide; every test starts them (and the
// rest of the registry) from zero so device stats and counters line up.
class SpaceObservatoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
    obs::Registry().ResetAll();
  }
};

uint64_t Bytes(const obs::IoAttribution& attr, obs::IoSource source) {
  return attr.bytes[static_cast<size_t>(source)];
}

// The invariant itself: per-source counters are internally consistent and
// sum exactly to what the device acknowledged.
void ExpectExactSum(const DiskStats& stats) {
  const obs::IoAttribution attr = obs::AttributionSnapshot();
  uint64_t sum_writes = 0;
  uint64_t sum_bytes = 0;
  for (size_t s = 0; s < obs::kIoSourceCount; ++s) {
    sum_writes += attr.writes[s];
    sum_bytes += attr.bytes[s];
  }
  EXPECT_EQ(sum_writes, attr.total_writes);
  EXPECT_EQ(sum_bytes, attr.total_bytes);
  EXPECT_EQ(attr.total_writes, stats.write_ops);
  EXPECT_EQ(attr.total_bytes, stats.sectors_written * kSectorSize);
}

// --- exact-sum invariant ----------------------------------------------------

// Small segments so a modest workload spans several of them; the victims the
// cleaner picks are then half-live and force relocation traffic.
LfsParams SmallSegmentParams() {
  LfsParams params = LfsInstance::DefaultParams();
  params.segment_size = 1 << 19;
  return params;
}

TEST_F(SpaceObservatoryTest, ExactSumSeededSingleShard) {
  // Format + mount are attributed too (the registry starts fresh).
  LfsInstance inst(131072, SmallSegmentParams());
  constexpr int kFiles = 16;
  constexpr size_t kBytesPerFile = 40000;
  for (int i = 0; i < kFiles; ++i) {
    ASSERT_TRUE(
        inst.paths->WriteFile("/f" + std::to_string(i), TestBytes(kBytesPerFile, i)).ok());
  }
  ASSERT_TRUE(inst.fs->Sync().ok());
  // Overwrites give the cleaner dead blocks, so a cleaning pass relocates
  // live data and the kCleaner class sees traffic.
  for (int i = 0; i < kFiles; i += 2) {
    ASSERT_TRUE(
        inst.paths->WriteFile("/f" + std::to_string(i), TestBytes(kBytesPerFile, 100 + i)).ok());
  }
  ASSERT_TRUE(inst.fs->Sync().ok());
  ASSERT_TRUE(inst.fs->CleanNow(8).ok());
  ASSERT_TRUE(inst.fs->Sync().ok());
  for (int i = 1; i < kFiles; i += 2) {
    ASSERT_TRUE(inst.paths->Unlink("/f" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(inst.fs->Sync().ok());

  ExpectExactSum(inst.disk->stats());
  const obs::IoAttribution attr = obs::AttributionSnapshot();
  EXPECT_GT(Bytes(attr, obs::IoSource::kForegroundData), 0u);
  EXPECT_GT(Bytes(attr, obs::IoSource::kCheckpoint), 0u);
  EXPECT_GT(Bytes(attr, obs::IoSource::kCleaner), 0u);
  EXPECT_GE(attr.write_amplification, 1.0);
}

TEST_F(SpaceObservatoryTest, ExactSumMultiShard) {
  SimClock clock;
  CpuModel cpu(&clock, 10.0);
  MemoryDisk disk(131072, &clock);
  ASSERT_TRUE(ShardedLfs::Format(&disk, LfsInstance::DefaultParams(), 4).ok());
  auto mounted = ShardedLfs::Mount(&disk, &clock, &cpu);
  ASSERT_TRUE(mounted.ok());
  auto& fs = *mounted;

  std::vector<InodeNum> dirs;
  for (int d = 0; d < 4; ++d) {
    auto dir = fs->Create(kRootIno, "vol" + std::to_string(d), FileType::kDirectory);
    ASSERT_TRUE(dir.ok());
    dirs.push_back(*dir);
    for (int i = 0; i < 6; ++i) {
      auto ino = fs->Create(*dir, "f" + std::to_string(i), FileType::kRegular);
      ASSERT_TRUE(ino.ok());
      const std::vector<std::byte> payload = TestBytes(12000, d * 100 + i);
      ASSERT_TRUE(fs->Write(*ino, 0, payload).ok());
      ASSERT_TRUE(fs->Fsync(*ino).ok());
    }
  }
  // Cross-shard renames exercise the intent log (kIntent attribution).
  ASSERT_TRUE(fs->Rename(dirs[0], "f0", dirs[1], "moved0").ok());
  ASSERT_TRUE(fs->Rename(dirs[2], "f1", dirs[3], "moved1").ok());
  ASSERT_TRUE(fs->Sync().ok());

  ExpectExactSum(disk.stats());
  const obs::IoAttribution attr = obs::AttributionSnapshot();
  EXPECT_GT(Bytes(attr, obs::IoSource::kForegroundData), 0u);
  EXPECT_GT(Bytes(attr, obs::IoSource::kIntent), 0u);
}

// Racing shard front-ends all attribute concurrently; after the barrier
// (join + sync) the relaxed counters must still sum exactly. This is also
// the TSan target for the attribution seam (label: concurrent).
TEST_F(SpaceObservatoryTest, ExactSumConcurrentShardFrontEnds) {
  SimClock clock;
  CpuModel cpu(&clock, 10.0);
  MemoryDisk disk(131072, &clock);
  LfsParams params = LfsInstance::DefaultParams();
  params.segment_size = 1 << 19;
  ASSERT_TRUE(ShardedLfs::Format(&disk, params, 4).ok());
  auto mounted = ShardedLfs::Mount(&disk, &clock, &cpu);
  ASSERT_TRUE(mounted.ok());

  ConcurrentLoadOptions options;
  options.threads = 4;
  options.ops_per_thread = 150;
  options.fsync_interval = 6;
  auto report = RunConcurrentLoad(mounted->get(), options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << (report->problems.empty() ? "unexpected errors"
                                                         : report->problems.front());
  ASSERT_TRUE((*mounted)->Sync().ok());

  ExpectExactSum(disk.stats());
}

TEST_F(SpaceObservatoryTest, ExactSumAcrossCrashRecovery) {
  SimClock clock;
  MemoryDisk inner(131072, &clock);
  FaultInjectingDisk fault(&inner);
  ASSERT_TRUE(LfsFileSystem::Format(&inner, LfsInstance::DefaultParams()).ok());
  {
    auto fs = LfsFileSystem::Mount(&fault, &clock, nullptr);
    ASSERT_TRUE(fs.ok());
    PathFs paths(fs->get());
    ASSERT_TRUE(paths.WriteFile("/durable", TestBytes(30000, 1)).ok());
    ASSERT_TRUE((*fs)->Sync().ok());
    ASSERT_TRUE(paths.WriteFile("/after", TestBytes(9000, 2)).ok());
    auto ino = paths.Resolve("/after");
    ASSERT_TRUE(ino.ok());
    ASSERT_TRUE((*fs)->Fsync(*ino).ok());
    // Power off with nothing in flight: every write the device acknowledged
    // was attributed, everything refused after this transfers no bytes.
    fault.CrashNow();
  }
  // Reboot on the surviving image; roll-forward replays the log tail.
  auto fs = LfsFileSystem::Mount(&inner, &clock, nullptr);
  ASSERT_TRUE(fs.ok());
  EXPECT_GT((*fs)->rolled_forward_partials(), 0u);
  PathFs paths(fs->get());
  ASSERT_TRUE(paths.WriteFile("/post", TestBytes(5000, 3)).ok());
  ASSERT_TRUE((*fs)->Sync().ok());

  // The invariant spans the whole history: format, first mount's writes,
  // recovery's own writes, and the post-recovery workload.
  ExpectExactSum(inner.stats());
}

TEST_F(SpaceObservatoryTest, ExactSumUnderInjectedTransientFaults) {
  SimClock clock;
  MemoryDisk inner(65536, &clock);
  FaultInjectingDisk fault(&inner);
  ResilientDisk disk(&fault, &clock);
  // Few dozen (vectored) write requests in this run: a high seeded rate so
  // the injection deterministically fires several times.
  fault.SetTransientErrorRates(/*seed=*/20260808, /*read_p=*/0.05, /*write_p=*/0.25);

  ASSERT_TRUE(LfsFileSystem::Format(&disk, LfsInstance::DefaultParams()).ok());
  auto fs = LfsFileSystem::Mount(&disk, &clock, nullptr);
  ASSERT_TRUE(fs.ok());
  PathFs paths(fs->get());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(paths.WriteFile("/f" + std::to_string(i), TestBytes(40000, i)).ok());
  }
  ASSERT_TRUE((*fs)->Sync().ok());
  for (int i = 0; i < 8; i += 2) {
    ASSERT_TRUE(paths.WriteFile("/f" + std::to_string(i), TestBytes(40000, 50 + i)).ok());
  }
  ASSERT_TRUE((*fs)->Sync().ok());
  ASSERT_TRUE((*fs)->CleanNow(8).ok());
  ASSERT_TRUE((*fs)->Sync().ok());

  // The retry layer really absorbed injected write failures: a failed
  // attempt transfers nothing and is attributed nowhere; only the successful
  // retry reaches the inner medium and the counters.
  EXPECT_GT(fault.transient_write_errors_injected(), 0u);
  ExpectExactSum(inner.stats());
}

// --- lifecycle, age, and heat telemetry -------------------------------------

TEST_F(SpaceObservatoryTest, LifecycleCountersAndAgeHeatHistograms) {
  LfsInstance inst(131072, SmallSegmentParams());
  PathFs& paths = *inst.paths;
  // Many small files co-resident in one segment, then overwrite them one
  // sync apart: each overwrite kills a block in the *original* segment at a
  // later sim time, so its overwrite-interval EWMA seeds and folds.
  constexpr int kFiles = 8;
  for (int i = 0; i < kFiles; ++i) {
    ASSERT_TRUE(paths.WriteFile("/s" + std::to_string(i), TestBytes(4096, i)).ok());
  }
  ASSERT_TRUE(inst.fs->Sync().ok());
  for (int i = 0; i < kFiles; ++i) {
    ASSERT_TRUE(paths.WriteFile("/s" + std::to_string(i), TestBytes(4096, 40 + i)).ok());
    ASSERT_TRUE(inst.fs->Sync().ok());
  }
  // Bulk data to seal a few more segments (512 KB each here).
  ASSERT_TRUE(paths.WriteFile("/bulk", TestBytes(1500000, 99)).ok());
  ASSERT_TRUE(inst.fs->Sync().ok());

  const auto& usage = inst.fs->usage();
  const LfsSuperblock& sb = inst.fs->superblock();
  bool heated = false;
  for (uint32_t seg = 0; seg < sb.num_segments && !heated; ++seg) {
    heated = usage.Get(seg).heat_interval_ewma > 0.0;
  }
  EXPECT_TRUE(heated) << "no segment ever folded an overwrite interval";

  ASSERT_TRUE(inst.fs->CleanNow(8).ok());
  ASSERT_TRUE(inst.fs->Sync().ok());

  auto counter = [](const char* name) {
    const obs::Counter* c = obs::Registry().FindCounter(name);
    return c == nullptr ? 0u : c->Value();
  };
  EXPECT_GT(counter("logfs.seg.lifecycle.allocated"), 0u);
  EXPECT_GT(counter("logfs.seg.lifecycle.sealed"), 0u);
  EXPECT_GT(counter("logfs.seg.lifecycle.cleaned"), 0u);
  EXPECT_EQ(counter("logfs.seg.lifecycle.quarantined"), 0u);

  const obs::Histogram* age = obs::Registry().FindHistogram("logfs.seg.age_us");
  ASSERT_NE(age, nullptr);
  EXPECT_GT(age->Count(), 0u);
  const obs::Histogram* heat = obs::Registry().FindHistogram("logfs.seg.heat");
  ASSERT_NE(heat, nullptr);
  EXPECT_GT(heat->Count(), 0u);
}

TEST_F(SpaceObservatoryTest, UtilizationDistributionGauges) {
  LfsInstance inst;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(inst.paths->WriteFile("/u" + std::to_string(i), TestBytes(50000, i)).ok());
  }
  ASSERT_TRUE(inst.fs->Sync().ok());
  ASSERT_TRUE(inst.fs->Tick().ok());  // Tick republishes the distribution.

  std::vector<double> utils;
  inst.fs->CollectSegmentUtilization(&utils);
  ASSERT_FALSE(utils.empty());

  const obs::Gauge* segments = obs::Registry().FindGauge("logfs.seg.util.segments");
  ASSERT_NE(segments, nullptr);
  EXPECT_EQ(static_cast<size_t>(segments->Value()), utils.size());

  double bucket_total = 0.0;
  for (size_t b = 0; b < obs::kUtilBuckets; ++b) {
    const obs::Gauge* bucket =
        obs::Registry().FindGauge("logfs.seg.util.bucket" + std::to_string(b));
    ASSERT_NE(bucket, nullptr) << "bucket " << b;
    EXPECT_GE(bucket->Value(), 0.0);
    bucket_total += bucket->Value();
  }
  EXPECT_DOUBLE_EQ(bucket_total, static_cast<double>(utils.size()));

  const obs::Gauge* mean = obs::Registry().FindGauge("logfs.seg.util.mean");
  ASSERT_NE(mean, nullptr);
  EXPECT_GE(mean->Value(), 0.0);
  EXPECT_LE(mean->Value(), 1.0);
}

// --- SegmentUsageTable edge cases -------------------------------------------

TEST(SegUsageEdgeTest, AddLiveUnderflowClampsToZero) {
  obs::Registry().ResetAll();
  SegmentUsageTable table(8, 4096);
  table.AddLive(2, 1000);
  EXPECT_EQ(table.Get(2).live_bytes, 1000u);
  // A double-decrement (the same block death accounted twice) must clamp,
  // not wrap the unsigned estimate to ~4 GB.
  table.AddLive(2, -1600);
  EXPECT_EQ(table.Get(2).live_bytes, 0u);
  table.AddLive(2, -5);
  EXPECT_EQ(table.Get(2).live_bytes, 0u);
  if (obs::kMetricsEnabled) {
    const obs::Counter* clamps = obs::Registry().FindCounter("logfs.usage.underflow_clamps");
    ASSERT_NE(clamps, nullptr);
    EXPECT_EQ(clamps->Value(), 2u);
  }
  // Recovery after a clamp: the estimate keeps tracking new live data.
  table.AddLive(2, 300);
  EXPECT_EQ(table.Get(2).live_bytes, 300u);
}

TEST(SegUsageEdgeTest, HeatEwmaSeedsThenFolds) {
  SegmentUsageTable table(4, 4096);
  table.NoteAllocated(1, 10.0);
  EXPECT_EQ(table.Get(1).heat_interval_ewma, 0.0);
  // First overwrite only establishes the reference time.
  table.RecordOverwrite(1, 12.0);
  EXPECT_EQ(table.Get(1).heat_interval_ewma, 0.0);
  // Second overwrite seeds the EWMA with the first observed interval.
  table.RecordOverwrite(1, 13.0);
  EXPECT_DOUBLE_EQ(table.Get(1).heat_interval_ewma, 1.0);
  // Then it folds: alpha * interval + (1 - alpha) * previous.
  table.RecordOverwrite(1, 17.0);
  EXPECT_DOUBLE_EQ(table.Get(1).heat_interval_ewma,
                   SegmentUsageTable::kHeatAlpha * 4.0 +
                       (1.0 - SegmentUsageTable::kHeatAlpha) * 1.0);
  // Reallocation (segment recycled by the log) restarts the estimate.
  table.NoteAllocated(1, 20.0);
  EXPECT_EQ(table.Get(1).heat_interval_ewma, 0.0);
  EXPECT_EQ(table.Get(1).last_overwrite_at, 0.0);
  EXPECT_EQ(table.Get(1).allocated_at, 20.0);
}

// The checkpoint/remount seam for usage state is EncodeBlock/DecodeBlock:
// durable fields (state, live bytes, write seq) round-trip — including
// kQuarantined — while the memory-only heat fields come back zeroed, because
// the 16-byte encoded entry layout never grew to carry them.
TEST(SegUsageEdgeTest, EncodeDecodeRoundTripsQuarantineZeroesHeat) {
  SegmentUsageTable table(16, 4096);
  table.SetLive(5, 4321);
  table.SetState(5, SegState::kQuarantined);
  table.SetWriteSeq(5, 99);
  table.NoteAllocated(5, 1.0);
  table.RecordOverwrite(5, 2.0);
  table.RecordOverwrite(5, 3.5);
  ASSERT_GT(table.Get(5).heat_interval_ewma, 0.0);

  std::vector<std::byte> block(4096);
  ASSERT_TRUE(table.EncodeBlock(0, block).ok());

  SegmentUsageTable remounted(16, 4096);
  ASSERT_TRUE(remounted.DecodeBlock(0, block).ok());
  const SegUsage& back = remounted.Get(5);
  EXPECT_EQ(back.state, SegState::kQuarantined);
  EXPECT_EQ(back.live_bytes, 4321u);
  EXPECT_EQ(back.last_write_seq, 99u);
  EXPECT_EQ(back.allocated_at, 0.0);
  EXPECT_EQ(back.last_overwrite_at, 0.0);
  EXPECT_EQ(back.heat_interval_ewma, 0.0);
}

}  // namespace
}  // namespace logfs
