// Shared test fixture plumbing: builds a simulated disk + clock + CPU and
// formats/mounts a file system on it. Used by the FFS tests, the LFS tests
// and the cross-FS conformance/property suites.
#ifndef LOGFS_TESTS_FS_FIXTURE_H_
#define LOGFS_TESTS_FS_FIXTURE_H_

#include <memory>

#include "src/disk/memory_disk.h"
#include "src/ffs/ffs_file_system.h"
#include "src/fsbase/path.h"
#include "src/lfs/lfs_file_system.h"
#include "src/sim/cpu_model.h"
#include "src/sim/sim_clock.h"

namespace logfs {

// A mounted FFS on a fresh simulated disk. Default ~34 MB (2 groups).
struct FfsInstance {
  explicit FfsInstance(uint64_t sectors = 70000, FfsParams params = {}) {
    clock = std::make_unique<SimClock>();
    cpu = std::make_unique<CpuModel>(clock.get(), 10.0);
    disk = std::make_unique<MemoryDisk>(sectors, clock.get());
    Status formatted = Format(disk.get(), params);
    if (!formatted.ok()) {
      std::abort();
    }
    auto mounted = FfsFileSystem::Mount(disk.get(), clock.get(), cpu.get());
    if (!mounted.ok()) {
      std::abort();
    }
    fs = std::move(mounted).value();
    paths = std::make_unique<PathFs>(fs.get());
  }

  static Status Format(BlockDevice* device, const FfsParams& params) {
    return FfsFileSystem::Format(device, params);
  }

  std::unique_ptr<SimClock> clock;
  std::unique_ptr<CpuModel> cpu;
  std::unique_ptr<MemoryDisk> disk;
  std::unique_ptr<FfsFileSystem> fs;
  std::unique_ptr<PathFs> paths;
};

// A mounted LFS on a fresh simulated disk. Default ~64 MB (~60 segments).
struct LfsInstance {
  explicit LfsInstance(uint64_t sectors = 131072, LfsParams params = DefaultParams(),
                       LfsFileSystem::Options options = {}) {
    clock = std::make_unique<SimClock>();
    cpu = std::make_unique<CpuModel>(clock.get(), 10.0);
    disk = std::make_unique<MemoryDisk>(sectors, clock.get());
    Status formatted = LfsFileSystem::Format(disk.get(), params);
    if (!formatted.ok()) {
      std::abort();
    }
    auto mounted = LfsFileSystem::Mount(disk.get(), clock.get(), cpu.get(), options);
    if (!mounted.ok()) {
      std::abort();
    }
    fs = std::move(mounted).value();
    paths = std::make_unique<PathFs>(fs.get());
  }

  // Modest inode table so tests mount fast.
  static LfsParams DefaultParams() {
    LfsParams params;
    params.max_inodes = 4096;
    return params;
  }

  // Unmounts (syncs) and remounts from the same disk image.
  Status Remount(LfsFileSystem::Options options = {}) {
    RETURN_IF_ERROR(fs->Sync());
    fs.reset();
    auto mounted = LfsFileSystem::Mount(disk.get(), clock.get(), cpu.get(), options);
    RETURN_IF_ERROR(mounted.status());
    fs = std::move(mounted).value();
    paths = std::make_unique<PathFs>(fs.get());
    return OkStatus();
  }

  std::unique_ptr<SimClock> clock;
  std::unique_ptr<CpuModel> cpu;
  std::unique_ptr<MemoryDisk> disk;
  std::unique_ptr<LfsFileSystem> fs;
  std::unique_ptr<PathFs> paths;
};

// Deterministic payload helpers shared across FS tests.
inline std::vector<std::byte> TestBytes(size_t n, uint64_t seed) {
  std::vector<std::byte> data(n);
  uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
  for (size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    data[i] = static_cast<std::byte>(x);
  }
  return data;
}

}  // namespace logfs

#endif  // LOGFS_TESTS_FS_FIXTURE_H_
