// Randomized model test of the directory-entry block format: thousands of
// random insert/remove/replace sequences are mirrored against a std::map
// reference; after every mutation the block must validate, list exactly the
// reference contents, and find exactly the reference names.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/fsbase/dirent.h"
#include "src/util/rng.h"

namespace logfs {
namespace {

class DirentFuzzTest : public ::testing::TestWithParam<uint64_t> {};

std::string RandomName(Rng& rng) {
  const size_t length = 1 + rng.NextBelow(24);
  std::string name(length, 'a');
  for (char& c : name) {
    c = static_cast<char>('a' + rng.NextBelow(26));
  }
  return name;
}

TEST_P(DirentFuzzTest, MatchesMapReference) {
  Rng rng(GetParam());
  const size_t block_size = 512 + rng.NextBelow(4) * 512;  // 512..2048.
  std::vector<std::byte> block(block_size);
  DirBlockView view(block);
  ASSERT_TRUE(view.InitEmpty().ok());
  std::map<std::string, std::pair<InodeNum, FileType>> reference;

  for (int step = 0; step < 600; ++step) {
    const uint64_t action = rng.NextBelow(100);
    if (action < 50) {
      // Insert a (probably fresh) name.
      const std::string name = RandomName(rng);
      const InodeNum ino = static_cast<InodeNum>(1 + rng.NextBelow(10000));
      const FileType type = rng.NextBool(0.3) ? FileType::kDirectory : FileType::kRegular;
      Status inserted = view.Insert(ino, type, name);
      if (reference.contains(name)) {
        ASSERT_EQ(inserted.code(), ErrorCode::kExists) << name;
      } else if (inserted.ok()) {
        reference[name] = {ino, type};
      } else {
        ASSERT_EQ(inserted.code(), ErrorCode::kNoSpace) << inserted.ToString();
      }
    } else if (action < 80 && !reference.empty()) {
      // Remove an existing name.
      auto it = reference.begin();
      std::advance(it, rng.NextBelow(reference.size()));
      ASSERT_TRUE(view.Remove(it->first).ok()) << it->first;
      reference.erase(it);
    } else if (action < 90 && !reference.empty()) {
      // Rewrite an entry's inode (the rename-overwrite path).
      auto it = reference.begin();
      std::advance(it, rng.NextBelow(reference.size()));
      const InodeNum ino = static_cast<InodeNum>(1 + rng.NextBelow(10000));
      ASSERT_TRUE(view.SetInode(it->first, ino, it->second.second).ok());
      it->second.first = ino;
    } else {
      // Remove of a missing name must fail cleanly.
      EXPECT_EQ(view.Remove("definitely-not-here-" + std::to_string(step)).code(),
                ErrorCode::kNotFound);
    }

    // Invariants after every step.
    ASSERT_TRUE(view.Validate().ok()) << "step " << step;
    auto listing = view.List();
    ASSERT_TRUE(listing.ok());
    ASSERT_EQ(listing->size(), reference.size()) << "step " << step;
    for (const DirEntry& entry : *listing) {
      auto it = reference.find(entry.name);
      ASSERT_NE(it, reference.end()) << entry.name;
      EXPECT_EQ(entry.ino, it->second.first);
      EXPECT_EQ(entry.type, it->second.second);
    }
    auto empty = view.Empty();
    ASSERT_TRUE(empty.ok());
    EXPECT_EQ(*empty, reference.empty());
  }
  // Spot-check Find for every surviving name.
  for (const auto& [name, value] : reference) {
    auto found = view.Find(name);
    ASSERT_TRUE(found.ok()) << name;
    EXPECT_EQ(found->ino, value.first);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirentFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

}  // namespace
}  // namespace logfs
