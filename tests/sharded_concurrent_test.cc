// The concurrent suite: many OS threads driving one sharded mount through
// the router, with per-thread content verification, global consistency
// checks, and a remount pass afterwards. This is the suite
// tools/check_tsan.sh runs under -DLOGFS_SANITIZE=thread — data races in
// the router, the seam primitives, the clock/CPU accounting, or the disk
// layer surface here as TSan reports.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/disk/memory_disk.h"
#include "src/lfs/sharded_lfs.h"
#include "src/workload/concurrent_driver.h"
#include "tests/fs_fixture.h"

namespace logfs {
namespace {

LfsParams ShardParams() {
  LfsParams params;
  params.max_inodes = 4096;
  params.segment_size = 1 << 19;
  params.clean_start_segments = 3;
  params.clean_stop_segments = 5;
  params.reserved_segments = 2;
  return params;
}

struct Rig {
  explicit Rig(uint32_t shards, uint64_t sectors = 131072) {
    clock = std::make_unique<SimClock>();
    cpu = std::make_unique<CpuModel>(clock.get(), 10.0);
    disk = std::make_unique<MemoryDisk>(sectors, clock.get());
    EXPECT_TRUE(ShardedLfs::Format(disk.get(), ShardParams(), shards).ok());
    auto mounted = ShardedLfs::Mount(disk.get(), clock.get(), cpu.get());
    EXPECT_TRUE(mounted.ok());
    fs = std::move(mounted).value();
  }
  std::unique_ptr<SimClock> clock;
  std::unique_ptr<CpuModel> cpu;
  std::unique_ptr<MemoryDisk> disk;
  std::unique_ptr<ShardedLfs> fs;
};

void RunAndVerify(Rig& rig, ConcurrentLoadOptions options) {
  auto report = RunConcurrentLoad(rig.fs.get(), options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << (report->problems.empty()
                                    ? "unexpected errors"
                                    : report->problems.front());
  EXPECT_GT(report->writes, 0u);

  ASSERT_TRUE(rig.fs->Sync().ok());
  auto check = CheckShardedLfs(rig.fs.get());
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->ok()) << check->Summary();

  // Everything must also hold after tearing down and remounting.
  rig.fs.reset();
  auto mounted = ShardedLfs::Mount(rig.disk.get(), rig.clock.get(), rig.cpu.get());
  ASSERT_TRUE(mounted.ok());
  rig.fs = std::move(mounted).value();
  check = CheckShardedLfs(rig.fs.get());
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->ok()) << check->Summary();
}

TEST(ShardedConcurrentTest, FourThreadsFourShardsPrivateDirs) {
  Rig rig(4);
  ConcurrentLoadOptions options;
  options.threads = 4;
  options.ops_per_thread = 250;
  options.seed = 1;
  RunAndVerify(rig, options);
}

TEST(ShardedConcurrentTest, SharedRootMaximumContention) {
  Rig rig(4);
  ConcurrentLoadOptions options;
  options.threads = 4;
  options.ops_per_thread = 150;
  options.shared_root = true;
  options.seed = 2;
  RunAndVerify(rig, options);
}

TEST(ShardedConcurrentTest, ManyThreadsFewShards) {
  Rig rig(2);
  ConcurrentLoadOptions options;
  options.threads = 8;
  options.ops_per_thread = 100;
  options.seed = 3;
  RunAndVerify(rig, options);
}

// shards=1: the degenerate router serializes everything behind one lock —
// the concurrent front-end must still be correct (and TSan-clean).
TEST(ShardedConcurrentTest, SingleShardStillThreadSafe) {
  Rig rig(1);
  ConcurrentLoadOptions options;
  options.threads = 4;
  options.ops_per_thread = 100;
  options.seed = 4;
  RunAndVerify(rig, options);
}

// Cross-shard namespace traffic racing the ONLINE checker/repairer and the
// intent-retirement paths (Sync / Tick). CheckShardedLfs self-serializes by
// taking the rename lock plus every shard lock, so running it — in repair
// mode — against live renames must neither trip TSan nor observe (or
// "repair") a mid-flight operation: every mid-race check reports a clean
// namespace, because intents make cross-shard ops atomic under the locks
// the checker takes.
TEST(ShardedConcurrentTest, RenamesRacingOnlineRepairerStayClean) {
  Rig rig(4);
  ASSERT_TRUE(rig.fs->intent_log_enabled());

  // Two directories on different shards, plus per-thread files.
  auto mk = [&](const std::string& name) {
    auto ino = rig.fs->Create(kRootIno, name, FileType::kDirectory);
    EXPECT_TRUE(ino.ok());
    return *ino;
  };
  const InodeNum d0 = mk("race-a");
  InodeNum d1 = 0;
  for (int i = 0;; ++i) {
    d1 = mk("race-b" + std::to_string(i));
    if (rig.fs->ShardOf(d1) != rig.fs->ShardOf(d0)) break;
  }
  constexpr int kMovers = 3;
  for (int t = 0; t < kMovers; ++t) {
    auto f = rig.fs->Create(d0, "m" + std::to_string(t), FileType::kRegular);
    ASSERT_TRUE(f.ok());
  }
  ASSERT_TRUE(rig.fs->Sync().ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  // Movers: cross-shard rename ping-pong (every iteration publishes and
  // applies an intent under both shard locks).
  for (int t = 0; t < kMovers; ++t) {
    threads.emplace_back([&, t] {
      const std::string name = "m" + std::to_string(t);
      while (!stop.load(std::memory_order_relaxed)) {
        ASSERT_TRUE(rig.fs->Rename(d0, name, d1, name).ok());
        ASSERT_TRUE(rig.fs->Rename(d1, name, d0, name).ok());
      }
    });
  }
  // Retirement: Sync and Tick race the movers' publishes.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(rig.fs->Tick().ok());
      ASSERT_TRUE(rig.fs->Sync().ok());
    }
  });
  // The online repairer, repeatedly, against the live mount.
  int clean_checks = 0;
  for (int round = 0; round < 12; ++round) {
    auto check = CheckShardedLfs(rig.fs.get(), /*verify_data=*/false,
                                 RepairMode::kRepair);
    ASSERT_TRUE(check.ok());
    EXPECT_TRUE(check->ok()) << check->Summary();
    EXPECT_EQ(check->repairs_applied, 0u)
        << "online repairer 'fixed' a mid-flight op: "
        << (check->repair_actions.empty() ? "" : check->repair_actions.front());
    clean_checks += check->ok() ? 1 : 0;
  }
  stop.store(true);
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(clean_checks, 12);

  ASSERT_TRUE(rig.fs->Sync().ok());
  auto final_check = CheckShardedLfs(rig.fs.get());
  ASSERT_TRUE(final_check.ok());
  EXPECT_TRUE(final_check->ok()) << final_check->Summary();
}

// With one thread the driver is fully deterministic: two separate rigs see
// identical op counts, so failures reproduce run to run.
TEST(ShardedConcurrentTest, SingleThreadIsDeterministic) {
  ConcurrentLoadOptions options;
  options.threads = 1;
  options.ops_per_thread = 200;
  options.seed = 7;

  Rig a(4);
  auto ra = RunConcurrentLoad(a.fs.get(), options);
  ASSERT_TRUE(ra.ok());
  Rig b(4);
  auto rb = RunConcurrentLoad(b.fs.get(), options);
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->creates, rb->creates);
  EXPECT_EQ(ra->writes, rb->writes);
  EXPECT_EQ(ra->renames, rb->renames);
  EXPECT_EQ(ra->unlinks, rb->unlinks);
  EXPECT_EQ(ra->bytes_written, rb->bytes_written);
  EXPECT_TRUE(ra->ok() && rb->ok());
}

}  // namespace
}  // namespace logfs
