// Observability-layer tests: registry semantics (bucketing, reset,
// concurrent increments), tracer ring behaviour, the TracingDisk trace cap,
// decorator inner_stats() consistency, byte-identical snapshots across
// identical seeded runs, and the cleaner's derived write cost against the
// paper formula hand-computed from the same raw counters.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/disk/fault_disk.h"
#include "src/disk/memory_disk.h"
#include "src/disk/striped_disk.h"
#include "src/disk/tracing_disk.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_context.h"
#include "src/obs/tracer.h"
#include "tests/fs_fixture.h"

namespace logfs {
namespace {

// Every test starts from zeroed instruments and an empty ring: the registry
// and tracer are process-wide, and earlier tests leave values behind.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry().ResetAll();
    obs::Tracer().Clear();
  }
};

TEST_F(ObsTest, CounterAndGaugeBasics) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::Counter& c = obs::Registry().GetCounter("logfs.test.counter");
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  // Same name, same instrument.
  EXPECT_EQ(&obs::Registry().GetCounter("logfs.test.counter"), &c);

  obs::Gauge& g = obs::Registry().GetGauge("logfs.test.gauge");
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
}

TEST_F(ObsTest, HistogramBucketing) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  const double bounds[] = {1.0, 10.0, 100.0};
  obs::Histogram& h = obs::Registry().GetHistogram("logfs.test.hist", bounds);
  h.Observe(0.5);    // bucket 0: <= 1
  h.Observe(1.0);    // bucket 0: exactly on the bound
  h.Observe(5.0);    // bucket 1: (1, 10]
  h.Observe(10.0);   // bucket 1
  h.Observe(50.0);   // bucket 2: (10, 100]
  h.Observe(1000.0); // bucket 3: overflow
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(3), 1u);
  EXPECT_EQ(h.Count(), 6u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 1.0 + 5.0 + 10.0 + 50.0 + 1000.0);

  // Re-registration with different bounds returns the existing histogram.
  const double other[] = {7.0};
  EXPECT_EQ(&obs::Registry().GetHistogram("logfs.test.hist", other), &h);
  EXPECT_EQ(h.bounds().size(), 3u);
}

TEST_F(ObsTest, ResetAllZeroesButKeepsRegistration) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::Counter& c = obs::Registry().GetCounter("logfs.test.reset_me");
  c.Increment(7);
  const double bounds[] = {1.0};
  obs::Histogram& h = obs::Registry().GetHistogram("logfs.test.reset_hist", bounds);
  h.Observe(0.5);
  obs::Registry().ResetAll();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  // Still the same registered instruments.
  EXPECT_EQ(&obs::Registry().GetCounter("logfs.test.reset_me"), &c);
  EXPECT_NE(obs::Registry().FindCounter("logfs.test.reset_me"), nullptr);
}

TEST_F(ObsTest, ConcurrentIncrementsAreLossFree) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::Counter& c = obs::Registry().GetCounter("logfs.test.concurrent");
  const double bounds[] = {0.5};
  obs::Histogram& h = obs::Registry().GetHistogram("logfs.test.concurrent_hist", bounds);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
        h.Observe(1.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.BucketCount(1), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.Sum(), static_cast<double>(kThreads) * kPerThread);
}

TEST_F(ObsTest, TracerRingDropsOldestAndCounts) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::StructuredTracer& tracer = obs::Tracer();
  const size_t old_capacity = tracer.capacity();
  tracer.SetCapacity(4);
  for (int i = 0; i < 10; ++i) {
    tracer.RecordInstant("test", "event" + std::to_string(i), static_cast<double>(i));
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // The survivors are the newest four, in order.
  std::vector<obs::TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().name, "event6");
  EXPECT_EQ(events.back().name, "event9");
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  tracer.SetCapacity(old_capacity);
}

TEST_F(ObsTest, TracerExportFormats) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::Tracer().RecordSpan("cat", "work", 1.0, 1.5, {{"k", "v"}});
  obs::Tracer().RecordInstant("cat", "ping", 2.0);
  const std::string json = obs::Tracer().ToJson();
  EXPECT_NE(json.find("\"kind\": \"span\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"work\""), std::string::npos);
  EXPECT_NE(json.find("\"k\": \"v\""), std::string::npos);
  const std::string chrome = obs::Tracer().ToChromeTrace();
  // Spans are complete events at sim-time microseconds.
  EXPECT_NE(chrome.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ts\": 1000000.0"), std::string::npos);
  EXPECT_NE(chrome.find("\"dur\": 500000.0"), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
}

TEST_F(ObsTest, MetricsJsonIsSortedAndStable) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::Registry().GetCounter("logfs.test.zz").Increment(2);
  obs::Registry().GetCounter("logfs.test.aa").Increment(1);
  const std::string json = obs::Registry().ToJson();
  EXPECT_LT(json.find("logfs.test.aa"), json.find("logfs.test.zz"));
  EXPECT_EQ(json, obs::Registry().ToJson());
}

// --- TracingDisk ring cap (satellite) ------------------------------------------

TEST(TracingDiskRingTest, CapDropsOldestRecords) {
  MemoryDisk inner(1024, nullptr);
  TracingDisk disk(&inner, nullptr);
  disk.set_trace_limit(4);
  std::vector<std::byte> sector(kSectorSize);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(disk.WriteSectors(static_cast<uint64_t>(i) * 2, sector).ok());
  }
  EXPECT_EQ(disk.trace().size(), 4u);
  EXPECT_EQ(disk.dropped_records(), 2u);
  // Oldest two (sectors 0 and 2) were dropped; the window starts at 4.
  EXPECT_EQ(disk.trace().front().first_sector, 4u);
  EXPECT_EQ(disk.trace().back().first_sector, 10u);
  // Summary counters cover the retained window only.
  EXPECT_EQ(disk.WriteRequestCount(), 4u);
  disk.ClearTrace();
  EXPECT_EQ(disk.trace().size(), 0u);
  EXPECT_EQ(disk.dropped_records(), 0u);
}

TEST(TracingDiskRingTest, SequentialityJudgedAcrossDroppedRecords) {
  MemoryDisk inner(1024, nullptr);
  TracingDisk disk(&inner, nullptr);
  disk.set_trace_limit(1);
  std::vector<std::byte> sector(kSectorSize);
  ASSERT_TRUE(disk.WriteSectors(0, sector).ok());
  ASSERT_TRUE(disk.WriteSectors(1, sector).ok());  // Continues the dropped write.
  ASSERT_EQ(disk.trace().size(), 1u);
  EXPECT_TRUE(disk.trace().front().sequential);
  EXPECT_EQ(disk.dropped_records(), 1u);
}

TEST(TracingDiskRingTest, ShrinkingLimitEvictsImmediately) {
  MemoryDisk inner(1024, nullptr);
  TracingDisk disk(&inner, nullptr);
  std::vector<std::byte> sector(kSectorSize);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(disk.WriteSectors(static_cast<uint64_t>(i), sector).ok());
  }
  disk.set_trace_limit(3);
  EXPECT_EQ(disk.trace().size(), 3u);
  EXPECT_EQ(disk.dropped_records(), 5u);
}

TEST(TracingDiskRingTest, ExactLimitBoundaryDropsNothingThenOnePerRequest) {
  MemoryDisk inner(1024, nullptr);
  TracingDisk disk(&inner, nullptr);
  disk.set_trace_limit(4);
  std::vector<std::byte> sector(kSectorSize);
  // Exactly at the limit: everything retained, nothing dropped.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(disk.WriteSectors(static_cast<uint64_t>(i) * 2, sector).ok());
  }
  EXPECT_EQ(disk.trace().size(), 4u);
  EXPECT_EQ(disk.dropped_records(), 0u);
  // One past the limit: exactly one eviction, window slides by one.
  ASSERT_TRUE(disk.WriteSectors(8, sector).ok());
  EXPECT_EQ(disk.trace().size(), 4u);
  EXPECT_EQ(disk.dropped_records(), 1u);
  EXPECT_EQ(disk.trace().front().first_sector, 2u);
  // Re-asserting the same limit is a no-op — no spurious evictions.
  disk.set_trace_limit(4);
  EXPECT_EQ(disk.trace().size(), 4u);
  EXPECT_EQ(disk.dropped_records(), 1u);
  // Limit zero retains nothing and counts every request as dropped.
  disk.set_trace_limit(0);
  EXPECT_EQ(disk.trace().size(), 0u);
  EXPECT_EQ(disk.dropped_records(), 5u);
  ASSERT_TRUE(disk.WriteSectors(10, sector).ok());
  EXPECT_EQ(disk.trace().size(), 0u);
  EXPECT_EQ(disk.dropped_records(), 6u);
}

// A do-nothing device for the concurrency test: MemoryDisk's stats counters
// are not atomic, so hammering one from several threads would be a data
// race in the *inner* device and mask what the test is about — the
// TracingDisk ring's own locking.
class NullDisk : public BlockDevice {
 public:
  Status ReadSectors(uint64_t, std::span<std::byte>, IoOptions) override {
    return OkStatus();
  }
  Status WriteSectors(uint64_t, std::span<const std::byte>, IoOptions) override {
    return OkStatus();
  }
  Status Flush() override { return OkStatus(); }
  uint64_t sector_count() const override { return 1u << 20; }
  const DiskStats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = DiskStats{}; }

 private:
  DiskStats stats_;
};

TEST(TracingDiskRingTest, DroppedRecordsMonotoneUnderConcurrentAppends) {
  NullDisk inner;
  TracingDisk disk(&inner, nullptr);
  constexpr size_t kLimit = 64;
  constexpr int kThreads = 4;
  constexpr int kWritesPerThread = 2000;
  disk.set_trace_limit(kLimit);

  // A reader polls dropped_records() while writers hammer the ring: every
  // observed value must be >= the previous one (monotone under the lock,
  // no torn or rolled-back reads).
  std::atomic<bool> done{false};
  std::atomic<bool> monotone{true};
  std::thread reader([&] {
    uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t now = disk.dropped_records();
      if (now < last) {
        monotone.store(false, std::memory_order_release);
      }
      last = now;
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&disk, t] {
      std::vector<std::byte> sector(kSectorSize);
      for (int i = 0; i < kWritesPerThread; ++i) {
        EXPECT_TRUE(
            disk.WriteSectors(static_cast<uint64_t>(t) * kWritesPerThread + i, sector)
                .ok());
      }
    });
  }
  for (std::thread& w : writers) {
    w.join();
  }
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_TRUE(monotone.load());
  // Conservation after quiescence: retained + dropped == appended exactly.
  const uint64_t total = static_cast<uint64_t>(kThreads) * kWritesPerThread;
  EXPECT_EQ(disk.trace().size(), kLimit);
  EXPECT_EQ(disk.dropped_records(), total - kLimit);
  EXPECT_EQ(disk.WriteRequestCount(), kLimit);
}

// --- Decorator inner_stats() (satellite) ----------------------------------------

TEST(InnerStatsTest, FaultDiskForwardsInnerStats) {
  MemoryDisk inner(1024, nullptr);
  FaultInjectingDisk disk(&inner);
  std::vector<std::byte> sector(kSectorSize);
  ASSERT_TRUE(disk.WriteSectors(0, sector).ok());
  ASSERT_TRUE(disk.ReadSectors(0, sector).ok());
  // No stats of its own: both views are the inner device's, same object.
  EXPECT_EQ(&disk.inner_stats(), &inner.stats());
  EXPECT_EQ(&disk.stats(), &disk.inner_stats());
  EXPECT_EQ(disk.inner_stats().write_ops, 1u);
  EXPECT_EQ(disk.inner_stats().read_ops, 1u);
}

TEST(InnerStatsTest, StripedDiskSumsMemberStats) {
  SimClock clock;
  // 4 members, striped at 8 sectors: a 64-sector write touches every member
  // twice but is ONE logical array request.
  StripedDisk disk(4, 256, 8, &clock);
  std::vector<std::byte> data(64 * kSectorSize);
  ASSERT_TRUE(disk.WriteSectors(0, data).ok());

  EXPECT_EQ(disk.stats().write_ops, 1u);  // Array-level view.
  uint64_t member_ops = 0;
  uint64_t member_sectors = 0;
  for (uint32_t m = 0; m < disk.member_count(); ++m) {
    member_ops += disk.member(m).stats().write_ops;
    member_sectors += disk.member(m).stats().sectors_written;
  }
  const DiskStats summed = disk.inner_stats();
  EXPECT_EQ(summed.write_ops, member_ops);
  EXPECT_GT(summed.write_ops, disk.stats().write_ops);  // Would under-count.
  EXPECT_EQ(summed.sectors_written, member_sectors);
  // No sector lost or double-counted between the two views.
  EXPECT_EQ(summed.sectors_written, disk.stats().sectors_written);

  disk.ResetStats();
  EXPECT_EQ(disk.inner_stats().write_ops, 0u);
  EXPECT_EQ(disk.stats().write_ops, 0u);
}

// --- Determinism (satellite) ----------------------------------------------------

// The workload every determinism assertion runs: seeded small files, a
// partial delete, a cleaning pass, a final sync.
void RunSeededWorkload(uint64_t seed) {
  LfsInstance inst;
  PathFs& paths = *inst.paths;
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(paths.WriteFile("/f" + std::to_string(i),
                                TestBytes(2048, seed + static_cast<uint64_t>(i)))
                    .ok());
    if (i % 64 == 63) {
      ASSERT_TRUE(inst.fs->Sync().ok());
    }
  }
  ASSERT_TRUE(inst.fs->Sync().ok());
  for (int i = 0; i < 300; i += 2) {
    ASSERT_TRUE(paths.Unlink("/f" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(inst.fs->Sync().ok());
  ASSERT_TRUE(inst.fs->CleanNow(8).ok());
  ASSERT_TRUE(inst.fs->Sync().ok());
}

TEST_F(ObsTest, IdenticalSeedRunsYieldByteIdenticalSnapshots) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  RunSeededWorkload(7);
  const std::string metrics_run1 = obs::Registry().ToJson();
  const std::string trace_run1 = obs::Tracer().ToJson();

  obs::Registry().ResetAll();
  obs::Tracer().Clear();
  RunSeededWorkload(7);
  const std::string metrics_run2 = obs::Registry().ToJson();
  const std::string trace_run2 = obs::Tracer().ToJson();

  EXPECT_EQ(metrics_run1, metrics_run2);
  EXPECT_EQ(trace_run1, trace_run2);
  // And the snapshot is not trivially empty.
  EXPECT_NE(metrics_run1.find("logfs.segwriter.partials_flushed"), std::string::npos);
  EXPECT_NE(metrics_run1.find("logfs.cleaner.passes"), std::string::npos);
  EXPECT_NE(trace_run1.find("\"cleaner\""), std::string::npos);
}

// --- Write cost vs the paper formula (acceptance criterion) ---------------------

TEST_F(ObsTest, CleanerWriteCostMatchesHandComputedPaperFormula) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  LfsInstance inst;
  // Fragment: 1 KB files, delete two thirds, clean.
  for (int i = 0; i < 1200; ++i) {
    ASSERT_TRUE(
        inst.paths->WriteFile("/frag" + std::to_string(i), TestBytes(1024, i)).ok());
    if (i % 64 == 63) {
      ASSERT_TRUE(inst.fs->Sync().ok());
    }
  }
  ASSERT_TRUE(inst.fs->Sync().ok());
  for (int i = 0; i < 1200; ++i) {
    if (i % 3 != 0) {
      ASSERT_TRUE(inst.paths->Unlink("/frag" + std::to_string(i)).ok());
    }
  }
  ASSERT_TRUE(inst.fs->Sync().ok());
  auto cleaned = inst.fs->CleanNow(16);
  ASSERT_TRUE(cleaned.ok());
  ASSERT_GT(*cleaned, 0u);

  const obs::Counter* examined =
      obs::Registry().FindCounter("logfs.cleaner.blocks_examined");
  const obs::Counter* copied =
      obs::Registry().FindCounter("logfs.cleaner.live_blocks_copied");
  const obs::Gauge* utilization = obs::Registry().FindGauge("logfs.cleaner.utilization");
  const obs::Gauge* write_cost = obs::Registry().FindGauge("logfs.cleaner.write_cost");
  ASSERT_NE(examined, nullptr);
  ASSERT_NE(copied, nullptr);
  ASSERT_NE(utilization, nullptr);
  ASSERT_NE(write_cost, nullptr);
  ASSERT_GT(examined->Value(), 0u);
  ASSERT_GT(copied->Value(), 0u);  // Survivors were really copied.

  // Hand-compute the paper's cost from the same raw counters the gauge was
  // derived from: u = live blocks copied / blocks examined, and
  //   write cost = 1 + u/(1-u) + 1/(1-u)
  // (one new-data segment write, u/(1-u) live-copy writes, 1/(1-u) cleaner
  // segment reads per segment of new data; Section 3 of the paper).
  const double u = static_cast<double>(copied->Value()) /
                   static_cast<double>(examined->Value());
  ASSERT_GT(u, 0.0);
  ASSERT_LT(u, 1.0);
  const double expected_cost = 1.0 + u / (1.0 - u) + 1.0 / (1.0 - u);
  EXPECT_DOUBLE_EQ(utilization->Value(), u);
  EXPECT_DOUBLE_EQ(write_cost->Value(), expected_cost);
  EXPECT_GT(write_cost->Value(), 1.0);

  // And the raw counters mirror the per-instance CleanerStats exactly.
  EXPECT_EQ(examined->Value(), inst.fs->cleaner_stats().blocks_examined);
  EXPECT_EQ(copied->Value(), inst.fs->cleaner_stats().live_blocks_copied);
}

// --- causal identity in the ring and the exporters ------------------------

TEST_F(ObsTest, SpanIdsAppearInExportsOnlyWhenTraced) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  // One untraced span and one traced span with a link to another trace.
  obs::Tracer().RecordSpan("plain", "work", 1.0, 2.0);
  obs::Tracer().RecordSpanIds("traced", "child", 2.0, 3.0,
                              /*trace_id=*/7, /*span_id=*/8, /*parent_id=*/0,
                              /*links=*/{42});

  const std::string json = obs::Tracer().ToJson();
  // The untraced event carries no id fields at all — the exact property
  // that keeps pre-tracing golden snapshots byte-identical.
  const size_t plain_at = json.find("\"plain\"");
  const size_t traced_at = json.find("\"traced\"");
  ASSERT_NE(plain_at, std::string::npos);
  ASSERT_NE(traced_at, std::string::npos);
  const std::string plain_obj = json.substr(plain_at, traced_at - plain_at);
  EXPECT_EQ(plain_obj.find("\"trace\":"), std::string::npos);
  EXPECT_EQ(plain_obj.find("\"span\":"), std::string::npos);
  EXPECT_NE(json.find("\"trace\": 7, \"span\": 8, \"parent\": 0"),
            std::string::npos);
  EXPECT_NE(json.find("\"links\": [42]"), std::string::npos);

  const std::string chrome = obs::Tracer().ToChromeTrace();
  // Parentless traced span opens a flow; its link closes a flow step.
  EXPECT_NE(chrome.find("\"ph\": \"s\", \"id\": 7"), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\": \"f\", \"bp\": \"e\", \"id\": 42"),
            std::string::npos);
  // The untraced span produces no flow events and no id args.
  const size_t plain_chrome = chrome.find("\"plain\"");
  ASSERT_NE(plain_chrome, std::string::npos);
  EXPECT_EQ(chrome.substr(0, plain_chrome).find("\"ph\": \"s\""),
            std::string::npos);
}

TEST_F(ObsTest, TraceIdsResetWithClear) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  const uint64_t first = obs::Tracer().NextId();
  EXPECT_EQ(first, 1u);  // SetUp cleared the ring, so ids restart at 1.
  EXPECT_EQ(obs::Tracer().NextId(), 2u);
  obs::Tracer().Clear();
  EXPECT_EQ(obs::Tracer().NextId(), 1u);

  // MintTrace draws from the same counter and respects the runtime gate.
  obs::Tracer().Clear();
  obs::SetTracingEnabled(false);
  EXPECT_FALSE(obs::MintTrace().active());
  obs::SetTracingEnabled(true);
  const obs::TraceContext ctx = obs::MintTrace();
  EXPECT_EQ(ctx.trace_id, 1u);
  EXPECT_EQ(ctx.span_id, 2u);
}

TEST_F(ObsTest, TraceContextScopeNestsAndRestores) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  EXPECT_FALSE(obs::CurrentTraceContext().active());
  const obs::TraceContext outer = obs::MintTrace();
  {
    obs::TraceContextScope outer_scope(outer);
    EXPECT_EQ(obs::CurrentTraceContext().span_id, outer.span_id);
    const obs::TraceContext inner{outer.trace_id, obs::MintSpanId(outer)};
    {
      obs::TraceContextScope inner_scope(inner);
      EXPECT_EQ(obs::CurrentTraceContext().span_id, inner.span_id);
    }
    EXPECT_EQ(obs::CurrentTraceContext().span_id, outer.span_id);
    // Installing an inactive context is a no-op, not a reset.
    {
      obs::TraceContextScope inert(obs::TraceContext{});
      EXPECT_EQ(obs::CurrentTraceContext().span_id, outer.span_id);
    }
  }
  EXPECT_FALSE(obs::CurrentTraceContext().active());
}

}  // namespace
}  // namespace logfs
