// Crash-consistency sweep for the sharded multi-log (ctest -L crash).
//
// A single RecordingDisk under the whole volume journals the interleaved
// write streams of all four shards; CrashImageGenerator then enumerates
// post-crash images (prefix + torn-write variants) exactly as the
// single-log explorer does. The sharded durability contract verified per
// image:
//
//   1. the sharded mount succeeds (every shard recovers independently),
//      under both roll-forward and checkpoint-only recovery;
//   2. every per-shard structural invariant holds (LfsChecker shard mode:
//      imap resolution, usage exactness, address uniqueness, media CRCs,
//      content readability);
//   3. under roll-forward, every file whose Fsync completed before the
//      crash point is present with exactly its fsynced content;
//   4. the global namespace is CLEAN — zero dangling dirents, zero
//      orphans, exact nlinks. The cross-shard intent log (lfs_intent.h)
//      publishes a durable intent before the first half of every
//      multi-shard namespace op mutates, and mount-time reconciliation
//      (DESIGN.md §6i) completes or rolls back whatever the crash split.
//
// The CrossShardOpsAtomic matrix additionally pins crash boundaries at
// every intent-region write (publish and retire), so torn and mid-intent
// states — the exact window the log exists to cover — are always in the
// enumeration, never sampled over by the boundary stride.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/crashsim/crash_image.h"
#include "src/crashsim/recording_disk.h"
#include "src/disk/memory_disk.h"
#include "src/lfs/lfs_format.h"
#include "src/lfs/sharded_lfs.h"
#include "tests/fs_fixture.h"

namespace logfs {
namespace {

constexpr uint64_t kSectors = 65536;  // 32 MB; 8 MB per shard.
constexpr uint32_t kShards = 4;

LfsParams RigParams() {
  LfsParams params;
  params.max_inodes = 1024;
  params.segment_size = 1 << 19;
  params.clean_start_segments = 3;
  params.clean_stop_segments = 5;
  params.reserved_segments = 2;
  return params;
}

struct DurableFile {
  InodeNum ino = 0;
  std::vector<std::byte> content;
  size_t journal_len = 0;  // Journal size when the Fsync returned.
};

struct RecordedRun {
  std::vector<std::byte> base_image;       // Disk content right after format.
  std::vector<WriteRecord> writes;         // The interleaved journal.
  std::vector<DurableFile> durable;
};

// Formats a sharded volume, then replays a deterministic single-threaded
// workload through the router while recording every sector write. With
// `final_sync` the journal ends in a fully flushed state (the complete
// replay must then recover perfectly clean); without it the tail holds
// unflushed crash points.
RecordedRun RecordWorkload(bool final_sync = false) {
  SimClock clock;
  CpuModel cpu(&clock, 10.0);
  MemoryDisk inner(kSectors, &clock);
  EXPECT_TRUE(ShardedLfs::Format(&inner, RigParams(), kShards).ok());
  RecordedRun run;
  {
    std::span<const std::byte> raw = inner.RawImage();
    run.base_image.assign(raw.begin(), raw.end());
  }

  RecordingDisk rec(&inner);
  auto mounted = ShardedLfs::Mount(&rec, &clock, &cpu);
  EXPECT_TRUE(mounted.ok());
  ShardedLfs* fs = mounted->get();

  // Durable skeleton: per-shard-ish working directories, then a global
  // barrier so every later path resolves in every crash state.
  std::vector<InodeNum> dirs;
  for (int d = 0; d < 4; ++d) {
    auto ino = fs->Create(kRootIno, "d" + std::to_string(d), FileType::kDirectory);
    EXPECT_TRUE(ino.ok());
    dirs.push_back(*ino);
  }
  EXPECT_TRUE(fs->Sync().ok());

  for (int i = 0; i < 40; ++i) {
    const InodeNum dir = dirs[i % 4];
    const std::string name = "f" + std::to_string(i);
    auto ino = fs->Create(dir, name, FileType::kRegular);
    EXPECT_TRUE(ino.ok());
    auto payload = TestBytes(4096 * (1 + i % 3), i);
    EXPECT_TRUE(fs->Write(*ino, 0, payload).ok());
    if (i % 4 == 0) {
      EXPECT_TRUE(fs->Fsync(*ino).ok());
      run.durable.push_back(DurableFile{*ino, std::move(payload), rec.writes().size()});
    }
    if (i % 7 == 3) {
      auto tmp = fs->Create(dir, "tmp" + std::to_string(i), FileType::kRegular);
      EXPECT_TRUE(tmp.ok());
      EXPECT_TRUE(fs->Write(*tmp, 0, TestBytes(4096, 100 + i)).ok());
      EXPECT_TRUE(fs->Unlink(dir, "tmp" + std::to_string(i)).ok());
    }
    if (i % 9 == 5) {
      // Cross-directory (and typically cross-shard) rename of a
      // non-durable file: both halves ride different shard streams.
      EXPECT_TRUE(fs->Rename(dir, name, dirs[(i + 1) % 4], name + "x").ok());
    }
    if (i == 17) {
      EXPECT_TRUE(fs->Checkpoint().ok());
    }
  }
  if (final_sync) {
    EXPECT_TRUE(fs->Sync().ok());
  }

  run.writes = rec.writes();
  // The streams really interleave: the journal must touch several slices.
  const uint64_t slice = kSectors / kShards;
  std::set<uint64_t> slices_touched;
  for (const WriteRecord& w : run.writes) {
    slices_touched.insert(w.first / slice);
  }
  EXPECT_GE(slices_touched.size(), 3u)
      << "journal does not interleave multiple shard streams";
  return run;
}

TEST(ShardedCrashTest, EveryCrashImageRecoversPerShard) {
  RecordedRun run = RecordWorkload();
  ASSERT_GT(run.writes.size(), 20u);
  ASSERT_GE(run.durable.size(), 5u);

  CrashImageGenerator gen(run.base_image, &run.writes);
  CrashEnumerationBudget budget;
  budget.max_boundaries = 16;
  budget.torn_variants = {1, 8};
  std::vector<CrashPlan> plans = gen.Enumerate(budget);
  ASSERT_FALSE(plans.empty());

  size_t durable_checked = 0;
  for (const CrashPlan& plan : plans) {
    auto image = gen.Materialize(plan);
    ASSERT_TRUE(image.ok()) << plan.Describe();
    for (bool roll_forward : {true, false}) {
      SimClock clock;
      CpuModel cpu(&clock, 10.0);
      MemoryDisk disk(kSectors, &clock);
      std::copy(image->begin(), image->end(), disk.MutableRawImage().begin());
      ShardedLfs::Options options;
      options.roll_forward = roll_forward;
      auto mounted = ShardedLfs::Mount(&disk, &clock, &cpu, options);
      ASSERT_TRUE(mounted.ok())
          << plan.Describe() << (roll_forward ? " [roll-forward]" : " [checkpoint-only]")
          << ": " << mounted.status().ToString();
      ShardedLfs* fs = mounted->get();

      auto report = CheckShardedLfs(fs, /*verify_data=*/true);
      ASSERT_TRUE(report.ok()) << plan.Describe();
      // Zero damage, global namespace included: intent reconciliation at
      // mount settles every half-applied cross-shard op.
      for (const std::string& problem : report->problems) {
        ADD_FAILURE() << plan.Describe()
                      << (roll_forward ? " [roll-forward]" : " [checkpoint-only]")
                      << ": " << problem;
      }

      if (!roll_forward) {
        continue;  // Fsync durability is a roll-forward guarantee.
      }
      for (const DurableFile& file : run.durable) {
        if (file.journal_len > plan.prefix) {
          continue;  // Fsync completed after this crash point.
        }
        ++durable_checked;
        auto stat = fs->Stat(file.ino);
        ASSERT_TRUE(stat.ok()) << plan.Describe() << ": fsynced ino " << file.ino
                               << " missing after crash";
        EXPECT_EQ(stat->size, file.content.size());
        std::vector<std::byte> out(file.content.size());
        auto n = fs->Read(file.ino, 0, out);
        ASSERT_TRUE(n.ok()) << plan.Describe();
        EXPECT_EQ(out, file.content)
            << plan.Describe() << ": fsynced ino " << file.ino << " content changed";
      }
    }
  }
  EXPECT_GT(durable_checked, 0u);
}

// A journal that ends in a global Sync must replay to a perfectly clean
// global namespace with nothing left for reconciliation to do: every
// intent was retired by the final sync, so the mount performs no repairs.
TEST(ShardedCrashTest, CompleteJournalRecoversClean) {
  RecordedRun run = RecordWorkload(/*final_sync=*/true);
  CrashImageGenerator gen(run.base_image, &run.writes);
  CrashPlan complete;
  complete.prefix = run.writes.size();
  auto image = gen.Materialize(complete);
  ASSERT_TRUE(image.ok());

  SimClock clock;
  CpuModel cpu(&clock, 10.0);
  MemoryDisk disk(kSectors, &clock);
  std::copy(image->begin(), image->end(), disk.MutableRawImage().begin());
  auto mounted = ShardedLfs::Mount(&disk, &clock, &cpu);
  ASSERT_TRUE(mounted.ok());
  EXPECT_FALSE(mounted->get()->reconcile_report().has_value())
      << "fully synced journal left pending intents";
  auto report = CheckShardedLfs(mounted->get());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

// Records a workload dominated by cross-shard namespace operations — the
// ops whose halves land on different shard logs and which the intent log
// exists to make crash-atomic:
//   * directory creates under root (FNV placement spreads them off the
//     parent's shard),
//   * cross-directory renames of files and directories, with and without
//     a destination victim,
//   * cross-shard hard links,
//   * unlinks/rmdirs where the child's home shard differs from the dir's.
// A mid-stream Checkpoint retires the first wave of intents, so the
// journal also contains RETIRED intent-slot writes (mid-completion crash
// points), and the tail leaves several intents unretired.
RecordedRun RecordCrossShardWorkload() {
  SimClock clock;
  CpuModel cpu(&clock, 10.0);
  MemoryDisk inner(kSectors, &clock);
  EXPECT_TRUE(ShardedLfs::Format(&inner, RigParams(), kShards).ok());
  RecordedRun run;
  {
    std::span<const std::byte> raw = inner.RawImage();
    run.base_image.assign(raw.begin(), raw.end());
  }

  RecordingDisk rec(&inner);
  auto mounted = ShardedLfs::Mount(&rec, &clock, &cpu);
  EXPECT_TRUE(mounted.ok());
  ShardedLfs* fs = mounted->get();

  // Durable skeleton of working directories.
  std::vector<InodeNum> dirs;
  for (int d = 0; d < 6; ++d) {
    auto ino = fs->Create(kRootIno, "d" + std::to_string(d), FileType::kDirectory);
    EXPECT_TRUE(ino.ok());
    dirs.push_back(*ino);
  }
  EXPECT_TRUE(fs->Sync().ok());

  for (int i = 0; i < 24; ++i) {
    const InodeNum dir = dirs[i % 6];
    const std::string name = "f" + std::to_string(i);
    auto ino = fs->Create(dir, name, FileType::kRegular);
    EXPECT_TRUE(ino.ok());
    EXPECT_TRUE(fs->Write(*ino, 0, TestBytes(4096, i)).ok());
    switch (i % 6) {
      case 0:  // Plain cross-directory rename (cross-shard halves).
        EXPECT_TRUE(fs->Rename(dir, name, dirs[(i + 1) % 6], name + "x").ok());
        break;
      case 1: {  // Rename over a victim on another shard.
        auto victim =
            fs->Create(dirs[(i + 2) % 6], name + "v", FileType::kRegular);
        EXPECT_TRUE(victim.ok());
        EXPECT_TRUE(fs->Rename(dir, name, dirs[(i + 2) % 6], name + "v").ok());
        break;
      }
      case 2: {  // Cross-shard hard link, then unlink the original.
        EXPECT_TRUE(fs->Link(dirs[(i + 3) % 6], name + "h", *ino).ok());
        EXPECT_TRUE(fs->Unlink(dir, name).ok());
        break;
      }
      case 3: {  // Subdirectory create (hash-spread), reparent, rmdir.
        auto sub = fs->Create(dir, "sub" + std::to_string(i), FileType::kDirectory);
        EXPECT_TRUE(sub.ok());
        EXPECT_TRUE(fs->Rename(dir, "sub" + std::to_string(i), dirs[(i + 4) % 6],
                               "sub" + std::to_string(i))
                        .ok());
        EXPECT_TRUE(fs->Rmdir(dirs[(i + 4) % 6], "sub" + std::to_string(i)).ok());
        break;
      }
      default:
        break;
    }
    if (i == 11) {
      // Retires the first wave of intents: the journal now holds RETIRED
      // slot rewrites (mid-completion crash points) plus later publishes.
      EXPECT_TRUE(fs->Checkpoint().ok());
    }
  }

  run.writes = rec.writes();
  return run;
}

// The tentpole acceptance test: enumerate crash images of a cross-shard-op
// workload — with boundaries FORCED at every intent-region write so
// mid-intent and mid-completion states are always covered, plus torn and
// reordered variants — and require that every single image mounts (under
// both recovery modes) to a namespace with zero damage of any kind.
TEST(ShardedCrashTest, CrossShardOpsAtomicAtEveryCrashPoint) {
  RecordedRun run = RecordCrossShardWorkload();
  ASSERT_GT(run.writes.size(), 20u);

  // Locate the intent region from the formatted image's own superblock.
  std::vector<std::byte> first(run.base_image.begin(), run.base_image.begin() + 4096);
  auto sb = DecodeLfsSuperblock(first);
  ASSERT_TRUE(sb.ok());
  ASSERT_TRUE(sb->has_intent_region());
  const uint64_t intent_start = sb->intent_start_sector;

  CrashImageGenerator gen(run.base_image, &run.writes);
  CrashEnumerationBudget budget;
  budget.max_boundaries = 24;
  budget.torn_variants = {1, 8};
  budget.reorder_within_epoch = true;
  // Pin a boundary just before AND just after every intent write: "before"
  // exercises the op never having started / never retired, "after" the
  // published-but-unapplied (or retired) record itself; torn variants of
  // the intent write come with the "before" boundary.
  size_t intent_writes = 0;
  for (size_t i = 0; i < run.writes.size(); ++i) {
    if (run.writes[i].first >= intent_start) {
      budget.forced_boundaries.push_back(i);
      budget.forced_boundaries.push_back(i + 1);
      ++intent_writes;
    }
  }
  ASSERT_GT(intent_writes, 4u) << "workload published no cross-shard intents";

  std::vector<CrashPlan> plans = gen.Enumerate(budget);
  ASSERT_GT(plans.size(), 2 * intent_writes);

  size_t reconciled_mounts = 0;
  for (const CrashPlan& plan : plans) {
    auto image = gen.Materialize(plan);
    ASSERT_TRUE(image.ok()) << plan.Describe();
    for (bool roll_forward : {true, false}) {
      SimClock clock;
      CpuModel cpu(&clock, 10.0);
      MemoryDisk disk(kSectors, &clock);
      std::copy(image->begin(), image->end(), disk.MutableRawImage().begin());
      ShardedLfs::Options options;
      options.roll_forward = roll_forward;
      auto mounted = ShardedLfs::Mount(&disk, &clock, &cpu, options);
      ASSERT_TRUE(mounted.ok())
          << plan.Describe() << (roll_forward ? " [roll-forward]" : " [checkpoint-only]")
          << ": " << mounted.status().ToString();
      ShardedLfs* fs = mounted->get();
      if (fs->reconcile_report().has_value()) {
        ++reconciled_mounts;
      }

      auto report = CheckShardedLfs(fs, /*verify_data=*/true);
      ASSERT_TRUE(report.ok()) << plan.Describe();
      for (const std::string& problem : report->problems) {
        ADD_FAILURE() << plan.Describe()
                      << (roll_forward ? " [roll-forward]" : " [checkpoint-only]")
                      << ": " << problem;
      }
    }
  }
  // The sweep must actually have exercised reconciliation, not just found
  // already-clean images.
  EXPECT_GT(reconciled_mounts, 0u);
}

}  // namespace
}  // namespace logfs
