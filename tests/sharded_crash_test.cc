// Crash-consistency sweep for the sharded multi-log (ctest -L crash).
//
// A single RecordingDisk under the whole volume journals the interleaved
// write streams of all four shards; CrashImageGenerator then enumerates
// post-crash images (prefix + torn-write variants) exactly as the
// single-log explorer does. The sharded durability contract verified per
// image:
//
//   1. the sharded mount succeeds (every shard recovers independently),
//      under both roll-forward and checkpoint-only recovery;
//   2. every per-shard structural invariant holds (LfsChecker shard mode:
//      imap resolution, usage exactness, address uniqueness, media CRCs,
//      content readability);
//   3. under roll-forward, every file whose Fsync completed before the
//      crash point is present with exactly its fsynced content.
//
// Cross-shard namespace atomicity is deliberately NOT asserted: a crash
// between the two halves of a cross-shard create/rename may leave a
// dangling dirent or an orphan inode (each shard individually consistent).
// That relaxation is the documented contract (DESIGN.md §6g); the global
// checker's namespace complaints are therefore tolerated here while any
// "shard N:" structural complaint fails the sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/crashsim/crash_image.h"
#include "src/crashsim/recording_disk.h"
#include "src/disk/memory_disk.h"
#include "src/lfs/sharded_lfs.h"
#include "tests/fs_fixture.h"

namespace logfs {
namespace {

constexpr uint64_t kSectors = 65536;  // 32 MB; 8 MB per shard.
constexpr uint32_t kShards = 4;

LfsParams RigParams() {
  LfsParams params;
  params.max_inodes = 1024;
  params.segment_size = 1 << 19;
  params.clean_start_segments = 3;
  params.clean_stop_segments = 5;
  params.reserved_segments = 2;
  return params;
}

struct DurableFile {
  InodeNum ino = 0;
  std::vector<std::byte> content;
  size_t journal_len = 0;  // Journal size when the Fsync returned.
};

struct RecordedRun {
  std::vector<std::byte> base_image;       // Disk content right after format.
  std::vector<WriteRecord> writes;         // The interleaved journal.
  std::vector<DurableFile> durable;
};

// Formats a sharded volume, then replays a deterministic single-threaded
// workload through the router while recording every sector write. With
// `final_sync` the journal ends in a fully flushed state (the complete
// replay must then recover perfectly clean); without it the tail holds
// unflushed crash points.
RecordedRun RecordWorkload(bool final_sync = false) {
  SimClock clock;
  CpuModel cpu(&clock, 10.0);
  MemoryDisk inner(kSectors, &clock);
  EXPECT_TRUE(ShardedLfs::Format(&inner, RigParams(), kShards).ok());
  RecordedRun run;
  {
    std::span<const std::byte> raw = inner.RawImage();
    run.base_image.assign(raw.begin(), raw.end());
  }

  RecordingDisk rec(&inner);
  auto mounted = ShardedLfs::Mount(&rec, &clock, &cpu);
  EXPECT_TRUE(mounted.ok());
  ShardedLfs* fs = mounted->get();

  // Durable skeleton: per-shard-ish working directories, then a global
  // barrier so every later path resolves in every crash state.
  std::vector<InodeNum> dirs;
  for (int d = 0; d < 4; ++d) {
    auto ino = fs->Create(kRootIno, "d" + std::to_string(d), FileType::kDirectory);
    EXPECT_TRUE(ino.ok());
    dirs.push_back(*ino);
  }
  EXPECT_TRUE(fs->Sync().ok());

  for (int i = 0; i < 40; ++i) {
    const InodeNum dir = dirs[i % 4];
    const std::string name = "f" + std::to_string(i);
    auto ino = fs->Create(dir, name, FileType::kRegular);
    EXPECT_TRUE(ino.ok());
    auto payload = TestBytes(4096 * (1 + i % 3), i);
    EXPECT_TRUE(fs->Write(*ino, 0, payload).ok());
    if (i % 4 == 0) {
      EXPECT_TRUE(fs->Fsync(*ino).ok());
      run.durable.push_back(DurableFile{*ino, std::move(payload), rec.writes().size()});
    }
    if (i % 7 == 3) {
      auto tmp = fs->Create(dir, "tmp" + std::to_string(i), FileType::kRegular);
      EXPECT_TRUE(tmp.ok());
      EXPECT_TRUE(fs->Write(*tmp, 0, TestBytes(4096, 100 + i)).ok());
      EXPECT_TRUE(fs->Unlink(dir, "tmp" + std::to_string(i)).ok());
    }
    if (i % 9 == 5) {
      // Cross-directory (and typically cross-shard) rename of a
      // non-durable file: both halves ride different shard streams.
      EXPECT_TRUE(fs->Rename(dir, name, dirs[(i + 1) % 4], name + "x").ok());
    }
    if (i == 17) {
      EXPECT_TRUE(fs->Checkpoint().ok());
    }
  }
  if (final_sync) {
    EXPECT_TRUE(fs->Sync().ok());
  }

  run.writes = rec.writes();
  // The streams really interleave: the journal must touch several slices.
  const uint64_t slice = kSectors / kShards;
  std::set<uint64_t> slices_touched;
  for (const WriteRecord& w : run.writes) {
    slices_touched.insert(w.first / slice);
  }
  EXPECT_GE(slices_touched.size(), 3u)
      << "journal does not interleave multiple shard streams";
  return run;
}

TEST(ShardedCrashTest, EveryCrashImageRecoversPerShard) {
  RecordedRun run = RecordWorkload();
  ASSERT_GT(run.writes.size(), 20u);
  ASSERT_GE(run.durable.size(), 5u);

  CrashImageGenerator gen(run.base_image, &run.writes);
  CrashEnumerationBudget budget;
  budget.max_boundaries = 16;
  budget.torn_variants = {1, 8};
  std::vector<CrashPlan> plans = gen.Enumerate(budget);
  ASSERT_FALSE(plans.empty());

  size_t durable_checked = 0;
  for (const CrashPlan& plan : plans) {
    auto image = gen.Materialize(plan);
    ASSERT_TRUE(image.ok()) << plan.Describe();
    for (bool roll_forward : {true, false}) {
      SimClock clock;
      CpuModel cpu(&clock, 10.0);
      MemoryDisk disk(kSectors, &clock);
      std::copy(image->begin(), image->end(), disk.MutableRawImage().begin());
      ShardedLfs::Options options;
      options.roll_forward = roll_forward;
      auto mounted = ShardedLfs::Mount(&disk, &clock, &cpu, options);
      ASSERT_TRUE(mounted.ok())
          << plan.Describe() << (roll_forward ? " [roll-forward]" : " [checkpoint-only]")
          << ": " << mounted.status().ToString();
      ShardedLfs* fs = mounted->get();

      auto report = CheckShardedLfs(fs, /*verify_data=*/true);
      ASSERT_TRUE(report.ok()) << plan.Describe();
      for (const std::string& problem : report->problems) {
        // Per-shard structural damage is a recovery bug; cross-shard
        // namespace raggedness is the documented relaxation.
        EXPECT_FALSE(problem.starts_with("shard "))
            << plan.Describe() << (roll_forward ? " [roll-forward]" : " [checkpoint-only]")
            << ": " << problem;
      }

      if (!roll_forward) {
        continue;  // Fsync durability is a roll-forward guarantee.
      }
      for (const DurableFile& file : run.durable) {
        if (file.journal_len > plan.prefix) {
          continue;  // Fsync completed after this crash point.
        }
        ++durable_checked;
        auto stat = fs->Stat(file.ino);
        ASSERT_TRUE(stat.ok()) << plan.Describe() << ": fsynced ino " << file.ino
                               << " missing after crash";
        EXPECT_EQ(stat->size, file.content.size());
        std::vector<std::byte> out(file.content.size());
        auto n = fs->Read(file.ino, 0, out);
        ASSERT_TRUE(n.ok()) << plan.Describe();
        EXPECT_EQ(out, file.content)
            << plan.Describe() << ": fsynced ino " << file.ino << " content changed";
      }
    }
  }
  EXPECT_GT(durable_checked, 0u);
}

// A journal that ends in a global Sync must replay to a perfectly clean
// global namespace — the cross-shard relaxation only covers truncated
// streams, never a fully flushed one.
TEST(ShardedCrashTest, CompleteJournalRecoversClean) {
  RecordedRun run = RecordWorkload(/*final_sync=*/true);
  CrashImageGenerator gen(run.base_image, &run.writes);
  CrashPlan complete;
  complete.prefix = run.writes.size();
  auto image = gen.Materialize(complete);
  ASSERT_TRUE(image.ok());

  SimClock clock;
  CpuModel cpu(&clock, 10.0);
  MemoryDisk disk(kSectors, &clock);
  std::copy(image->begin(), image->end(), disk.MutableRawImage().begin());
  auto mounted = ShardedLfs::Mount(&disk, &clock, &cpu);
  ASSERT_TRUE(mounted.ok());
  auto report = CheckShardedLfs(mounted->get());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

}  // namespace
}  // namespace logfs
