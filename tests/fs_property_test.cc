// Model-based property test: a random operation sequence is applied both to
// a trivial in-memory reference model and to the real file system; after
// every few steps the observable state (directory trees, file contents,
// stat sizes) must match. Runs against both FFS and LFS, with periodic
// Sync/DropCaches/Tick/remount shuffles so the on-disk paths are exercised,
// and (for LFS) ends with a full consistency check.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/ffs/ffs_check.h"
#include "src/lfs/lfs_check.h"
#include "src/util/rng.h"
#include "tests/fs_fixture.h"

namespace logfs {
namespace {

// Reference model: paths to contents; directories are a set of paths.
struct Model {
  std::map<std::string, std::vector<std::byte>> files;
  std::set<std::string> dirs;  // Without trailing slash; root implied.

  bool DirExists(const std::string& path) const {
    return path == "" || dirs.contains(path);
  }
  bool HasChildren(const std::string& path) const {
    const std::string prefix = path + "/";
    for (const auto& [file, _] : files) {
      if (file.starts_with(prefix)) {
        return true;
      }
    }
    for (const auto& dir : dirs) {
      if (dir.starts_with(prefix)) {
        return true;
      }
    }
    return false;
  }
};

template <typename Instance>
class PropertyHarness {
 public:
  explicit PropertyHarness(uint64_t seed) : rng_(seed) {}

  void Run(int steps) {
    for (int step = 0; step < steps; ++step) {
      Step(step);
      if (step % 16 == 15) {
        VerifyAll();
      }
      if (rng_.NextBool(0.05)) {
        ASSERT_TRUE(inst_.fs->Sync().ok());
      }
      if (rng_.NextBool(0.05)) {
        ASSERT_TRUE(inst_.fs->DropCaches().ok());
      }
      if (rng_.NextBool(0.1)) {
        inst_.clock->Advance(rng_.NextDouble() * 40.0);
        ASSERT_TRUE(inst_.fs->Tick().ok());
      }
    }
    VerifyAll();
    FinalCheck();
  }

 private:
  std::string PickDir() {
    if (model_.dirs.empty() || rng_.NextBool(0.4)) {
      return "";
    }
    auto it = model_.dirs.begin();
    std::advance(it, rng_.NextBelow(model_.dirs.size()));
    return *it;
  }

  std::string PickFile() {
    if (model_.files.empty()) {
      return "";
    }
    auto it = model_.files.begin();
    std::advance(it, rng_.NextBelow(model_.files.size()));
    return it->first;
  }

  void Step(int step) {
    const uint64_t action = rng_.NextBelow(100);
    if (action < 30) {  // Create/overwrite a file.
      const std::string dir = PickDir();
      const std::string path = dir + "/file" + std::to_string(rng_.NextBelow(40));
      const size_t size = rng_.NextBelow(30000);
      auto data = TestBytes(size, step);
      ASSERT_TRUE(inst_.paths->WriteFile(path, data).ok()) << path;
      model_.files[path] = data;
    } else if (action < 45) {  // Append.
      const std::string path = PickFile();
      if (path.empty()) {
        return;
      }
      auto data = TestBytes(rng_.NextBelow(8000), step + 1000);
      ASSERT_TRUE(inst_.paths->AppendFile(path, data).ok()) << path;
      auto& content = model_.files[path];
      content.insert(content.end(), data.begin(), data.end());
    } else if (action < 55) {  // Random in-place patch.
      const std::string path = PickFile();
      if (path.empty() || model_.files[path].empty()) {
        return;
      }
      auto& content = model_.files[path];
      const uint64_t offset = rng_.NextBelow(content.size());
      const size_t len = 1 + rng_.NextBelow(5000);
      auto patch = TestBytes(len, step + 2000);
      auto ino = inst_.paths->Resolve(path);
      ASSERT_TRUE(ino.ok());
      ASSERT_TRUE(inst_.fs->Write(*ino, offset, patch).ok());
      if (offset + len > content.size()) {
        content.resize(offset + len);
      }
      std::copy(patch.begin(), patch.end(), content.begin() + offset);
    } else if (action < 65) {  // Delete a file.
      const std::string path = PickFile();
      if (path.empty()) {
        return;
      }
      ASSERT_TRUE(inst_.paths->Unlink(path).ok()) << path;
      model_.files.erase(path);
    } else if (action < 75) {  // Truncate.
      const std::string path = PickFile();
      if (path.empty()) {
        return;
      }
      auto& content = model_.files[path];
      const uint64_t new_size = rng_.NextBelow(40000);
      auto ino = inst_.paths->Resolve(path);
      ASSERT_TRUE(ino.ok());
      ASSERT_TRUE(inst_.fs->Truncate(*ino, new_size).ok());
      content.resize(new_size, std::byte{0});
    } else if (action < 85) {  // Mkdir.
      const std::string dir = PickDir();
      const std::string path = dir + "/dir" + std::to_string(rng_.NextBelow(12));
      if (model_.dirs.contains(path) || model_.files.contains(path)) {
        return;
      }
      ASSERT_TRUE(inst_.paths->Mkdir(path).ok()) << path;
      model_.dirs.insert(path);
    } else if (action < 92) {  // Rmdir (only empty ones).
      if (model_.dirs.empty()) {
        return;
      }
      auto it = model_.dirs.begin();
      std::advance(it, rng_.NextBelow(model_.dirs.size()));
      const std::string path = *it;
      if (model_.HasChildren(path)) {
        EXPECT_EQ(inst_.paths->Rmdir(path).code(), ErrorCode::kNotEmpty) << path;
        return;
      }
      ASSERT_TRUE(inst_.paths->Rmdir(path).ok()) << path;
      model_.dirs.erase(path);
    } else {  // Rename a file.
      const std::string from = PickFile();
      if (from.empty()) {
        return;
      }
      const std::string to_dir = PickDir();
      if (!model_.DirExists(to_dir)) {
        return;
      }
      const std::string to = to_dir + "/renamed" + std::to_string(rng_.NextBelow(20));
      if (model_.dirs.contains(to) || to == from) {
        return;
      }
      ASSERT_TRUE(inst_.paths->Rename(from, to).ok()) << from << " -> " << to;
      model_.files[to] = model_.files[from];
      model_.files.erase(from);
    }
  }

  void VerifyAll() {
    for (const auto& [path, expected] : model_.files) {
      auto back = inst_.paths->ReadFile(path);
      ASSERT_TRUE(back.ok()) << path << ": " << back.status().ToString();
      ASSERT_EQ(*back, expected) << path;
      auto stat = inst_.paths->Stat(path);
      ASSERT_TRUE(stat.ok());
      ASSERT_EQ(stat->size, expected.size()) << path;
    }
    for (const auto& dir : model_.dirs) {
      auto stat = inst_.paths->Stat(dir);
      ASSERT_TRUE(stat.ok()) << dir;
      ASSERT_EQ(stat->type, FileType::kDirectory) << dir;
    }
  }

  void FinalCheck() {
    if constexpr (std::is_same_v<Instance, LfsInstance>) {
      LfsChecker checker(inst_.fs.get());
      auto report = checker.Check();
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_TRUE(report->ok()) << report->Summary();
    } else {
      FfsChecker checker(inst_.fs.get());
      auto report = checker.Check();
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_TRUE(report->ok()) << report->Summary();
    }
  }

  Rng rng_;
  Instance inst_;
  Model model_;
};

class FfsPropertyTest : public ::testing::TestWithParam<uint64_t> {};
class LfsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FfsPropertyTest, RandomOpsMatchModel) {
  PropertyHarness<FfsInstance> harness(GetParam());
  harness.Run(250);
}

TEST_P(LfsPropertyTest, RandomOpsMatchModel) {
  PropertyHarness<LfsInstance> harness(GetParam());
  harness.Run(250);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FfsPropertyTest, ::testing::Values(1, 2, 3, 4, 5));
INSTANTIATE_TEST_SUITE_P(Seeds, LfsPropertyTest, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace logfs
