// Tests for the sharded multi-log router (src/lfs/sharded_lfs.h):
// format/mount topology, cross-shard namespace operations, the global
// sharded checker, persistence across remounts, per-shard roll-forward,
// and the shards=1 degenerate configuration's byte-identity with the seed
// single-log format.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>

#include "src/disk/memory_disk.h"
#include "src/lfs/lfs_check.h"
#include "src/lfs/sharded_lfs.h"
#include "src/obs/metrics.h"
#include "tests/fs_fixture.h"

namespace logfs {
namespace {

LfsParams ShardParams() {
  LfsParams params;
  params.max_inodes = 4096;
  params.segment_size = 1 << 19;  // More segments per slice.
  params.clean_start_segments = 3;
  params.clean_stop_segments = 5;
  params.reserved_segments = 2;
  return params;
}

// A mounted sharded LFS on a fresh simulated disk (default 64 MB).
struct ShardedInstance {
  explicit ShardedInstance(uint32_t shards, uint64_t sectors = 131072,
                           LfsParams params = ShardParams()) {
    clock = std::make_unique<SimClock>();
    cpu = std::make_unique<CpuModel>(clock.get(), 10.0);
    disk = std::make_unique<MemoryDisk>(sectors, clock.get());
    Status formatted = ShardedLfs::Format(disk.get(), params, shards);
    if (!formatted.ok()) {
      std::abort();
    }
    auto mounted = ShardedLfs::Mount(disk.get(), clock.get(), cpu.get());
    if (!mounted.ok()) {
      std::abort();
    }
    fs = std::move(mounted).value();
  }

  Status Remount(ShardedLfs::Options options = {}) {
    RETURN_IF_ERROR(fs->Sync());
    fs.reset();
    auto mounted = ShardedLfs::Mount(disk.get(), clock.get(), cpu.get(), options);
    RETURN_IF_ERROR(mounted.status());
    fs = std::move(mounted).value();
    return OkStatus();
  }

  std::unique_ptr<SimClock> clock;
  std::unique_ptr<CpuModel> cpu;
  std::unique_ptr<MemoryDisk> disk;
  std::unique_ptr<ShardedLfs> fs;
};

void ExpectClean(ShardedLfs* fs) {
  auto report = CheckShardedLfs(fs);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->Summary();
}

TEST(ShardedLfsTest, FormatMountTopology) {
  ShardedInstance rig(4);
  EXPECT_EQ(rig.fs->shard_count(), 4u);
  EXPECT_EQ(rig.fs->ShardOf(kRootIno), 0u);  // Root lives on shard 0.
  // Residue striping: consecutive inos round-robin the shards.
  EXPECT_EQ(rig.fs->ShardOf(2), 1u);
  EXPECT_EQ(rig.fs->ShardOf(3), 2u);
  EXPECT_EQ(rig.fs->ShardOf(4), 3u);
  EXPECT_EQ(rig.fs->ShardOf(5), 0u);
  ExpectClean(rig.fs.get());
}

TEST(ShardedLfsTest, DirectoriesSpreadFilesColocate) {
  ShardedInstance rig(4);
  // Directories are hash-placed: a fan of sibling dirs must not pile onto
  // one log.
  std::set<uint32_t> used;
  std::vector<InodeNum> dirs;
  for (int i = 0; i < 16; ++i) {
    auto ino = rig.fs->Create(kRootIno, "d" + std::to_string(i), FileType::kDirectory);
    ASSERT_TRUE(ino.ok()) << ino.status().ToString();
    dirs.push_back(*ino);
    used.insert(rig.fs->ShardOf(*ino));
  }
  EXPECT_GE(used.size(), 3u);
  // Files colocate with their parent directory: the directory is the
  // placement domain, so a client working under its own dir stays on one
  // log.
  for (size_t d = 0; d < dirs.size(); ++d) {
    for (int i = 0; i < 4; ++i) {
      auto ino = rig.fs->Create(dirs[d], "f" + std::to_string(i), FileType::kRegular);
      ASSERT_TRUE(ino.ok()) << ino.status().ToString();
      EXPECT_EQ(rig.fs->ShardOf(*ino), rig.fs->ShardOf(dirs[d]));
    }
  }
  ExpectClean(rig.fs.get());
}

TEST(ShardedLfsTest, CrossShardDataRoundTrip) {
  ShardedInstance rig(4);
  const auto payload = TestBytes(3 * 4096 + 17, 42);
  // One directory per file so the hash placement lands data on several
  // different logs (files colocate with their parent dir).
  std::vector<InodeNum> dirs;
  for (int i = 0; i < 8; ++i) {
    auto dir = rig.fs->Create(kRootIno, "vol" + std::to_string(i), FileType::kDirectory);
    ASSERT_TRUE(dir.ok());
    dirs.push_back(*dir);
    auto ino = rig.fs->Create(*dir, "data" + std::to_string(i), FileType::kRegular);
    ASSERT_TRUE(ino.ok());
    ASSERT_TRUE(rig.fs->Write(*ino, 0, payload).ok());
    ASSERT_TRUE(rig.fs->Fsync(*ino).ok());
  }
  ASSERT_TRUE(rig.fs->DropCaches().ok());
  for (int i = 0; i < 8; ++i) {
    auto ino = rig.fs->Lookup(dirs[i], "data" + std::to_string(i));
    ASSERT_TRUE(ino.ok());
    std::vector<std::byte> out(payload.size());
    auto n = rig.fs->Read(*ino, 0, out);
    ASSERT_TRUE(n.ok());
    ASSERT_EQ(*n, payload.size());
    EXPECT_EQ(out, payload);
  }
  ExpectClean(rig.fs.get());
}

TEST(ShardedLfsTest, CrossShardNamespaceOps) {
  ShardedInstance rig(4);
  // Directories land on hash-chosen shards; build a small tree.
  auto d1 = rig.fs->Create(kRootIno, "alpha", FileType::kDirectory);
  auto d2 = rig.fs->Create(kRootIno, "beta", FileType::kDirectory);
  ASSERT_TRUE(d1.ok() && d2.ok());
  auto f = rig.fs->Create(*d1, "file", FileType::kRegular);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(rig.fs->Write(*f, 0, TestBytes(4096, 7)).ok());

  // Hard link across directories (and almost surely across shards).
  ASSERT_TRUE(rig.fs->Link(*d2, "link", *f).ok());
  auto st = rig.fs->Stat(*f);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->nlink, 2u);
  ExpectClean(rig.fs.get());

  // Unlink one name; the inode survives via the other.
  ASSERT_TRUE(rig.fs->Unlink(*d1, "file").ok());
  st = rig.fs->Stat(*f);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->nlink, 1u);
  ExpectClean(rig.fs.get());

  // Cross-directory file rename.
  ASSERT_TRUE(rig.fs->Rename(*d2, "link", *d1, "back").ok());
  EXPECT_TRUE(rig.fs->Lookup(*d1, "back").ok());
  EXPECT_FALSE(rig.fs->Lookup(*d2, "link").ok());
  ExpectClean(rig.fs.get());

  // Directory rename across parents: ".." must follow, nlinks must track.
  auto sub = rig.fs->Create(*d1, "sub", FileType::kDirectory);
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(rig.fs->Rename(*d1, "sub", *d2, "moved").ok());
  auto dots = rig.fs->Lookup(*sub, "..");
  ASSERT_TRUE(dots.ok());
  EXPECT_EQ(*dots, *d2);
  ExpectClean(rig.fs.get());

  // Directory-over-directory replace across parents.
  auto victim = rig.fs->Create(*d1, "victim", FileType::kDirectory);
  ASSERT_TRUE(victim.ok());
  ASSERT_TRUE(rig.fs->Rename(*d2, "moved", *d1, "victim").ok());
  EXPECT_FALSE(rig.fs->Stat(*victim).ok());  // Replaced and released.
  dots = rig.fs->Lookup(*sub, "..");
  ASSERT_TRUE(dots.ok());
  EXPECT_EQ(*dots, *d1);
  ExpectClean(rig.fs.get());

  // Rmdir of a (now empty) cross-shard directory.
  ASSERT_TRUE(rig.fs->Rmdir(*d1, "victim").ok());
  EXPECT_FALSE(rig.fs->Lookup(*d1, "victim").ok());
  ExpectClean(rig.fs.get());

  // Cycle prevention: cannot move a directory into its own subtree.
  auto outer = rig.fs->Create(kRootIno, "outer", FileType::kDirectory);
  auto inner = rig.fs->Create(*outer, "inner", FileType::kDirectory);
  ASSERT_TRUE(outer.ok() && inner.ok());
  EXPECT_FALSE(rig.fs->Rename(kRootIno, "outer", *inner, "oops").ok());
  ExpectClean(rig.fs.get());
}

TEST(ShardedLfsTest, SymlinksRouteThroughDefaultImpl) {
  ShardedInstance rig(4);
  auto ln = rig.fs->Symlink(kRootIno, "ln", "target/path");
  ASSERT_TRUE(ln.ok());
  auto back = rig.fs->Readlink(*ln);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "target/path");
  ExpectClean(rig.fs.get());
}

TEST(ShardedLfsTest, PersistsAcrossRemount) {
  ShardedInstance rig(4);
  const auto payload = TestBytes(2 * 4096, 11);
  std::vector<InodeNum> inos;
  for (int i = 0; i < 12; ++i) {
    auto ino = rig.fs->Create(kRootIno, "p" + std::to_string(i), FileType::kRegular);
    ASSERT_TRUE(ino.ok());
    ASSERT_TRUE(rig.fs->Write(*ino, 0, payload).ok());
    inos.push_back(*ino);
  }
  ASSERT_TRUE(rig.Remount().ok());
  EXPECT_EQ(rig.fs->shard_count(), 4u);
  for (int i = 0; i < 12; ++i) {
    auto ino = rig.fs->Lookup(kRootIno, "p" + std::to_string(i));
    ASSERT_TRUE(ino.ok());
    EXPECT_EQ(*ino, inos[i]);
    std::vector<std::byte> out(payload.size());
    auto n = rig.fs->Read(*ino, 0, out);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(out, payload);
  }
  ExpectClean(rig.fs.get());
}

TEST(ShardedLfsTest, FsyncSurvivesCrashMountPerShard) {
  ShardedInstance rig(4);
  const auto payload = TestBytes(4096, 23);
  std::vector<InodeNum> synced;
  for (int i = 0; i < 8; ++i) {
    auto ino = rig.fs->Create(kRootIno, "s" + std::to_string(i), FileType::kRegular);
    ASSERT_TRUE(ino.ok());
    ASSERT_TRUE(rig.fs->Write(*ino, 0, payload).ok());
    ASSERT_TRUE(rig.fs->Fsync(*ino).ok());
    synced.push_back(*ino);
  }
  // Crash-mount: drop the dirty state instead of syncing, then roll every
  // shard forward independently.
  rig.fs.reset();
  auto mounted = ShardedLfs::Mount(rig.disk.get(), rig.clock.get(), rig.cpu.get());
  ASSERT_TRUE(mounted.ok());
  rig.fs = std::move(mounted).value();
  for (InodeNum ino : synced) {
    std::vector<std::byte> out(payload.size());
    auto n = rig.fs->Read(ino, 0, out);
    ASSERT_TRUE(n.ok()) << "fsynced ino " << ino << " lost";
    EXPECT_EQ(out, payload);
  }
}

TEST(ShardedLfsTest, UnshardedImageMountsAsPassthrough) {
  LfsInstance seed;  // Plain single-log format.
  ASSERT_TRUE(seed.fs->Sync().ok());
  seed.fs.reset();
  auto mounted = ShardedLfs::Mount(seed.disk.get(), seed.clock.get(), seed.cpu.get());
  ASSERT_TRUE(mounted.ok()) << mounted.status().ToString();
  EXPECT_EQ((*mounted)->shard_count(), 1u);
  auto ino = (*mounted)->Create(kRootIno, "x", FileType::kRegular);
  EXPECT_TRUE(ino.ok());
  ExpectClean(mounted->get());
}

// The same op sequence, executed against a plain LfsFileSystem and against
// the router in its shards=1 degenerate configuration, must produce
// byte-identical disk images and identical post-mount DiskStats: the
// degenerate router adds a mutex and one 8-sector superblock probe read at
// mount, nothing else. The probe is mirrored on the seed side so the two
// simulated clocks stay in lockstep (MemoryDisk charges service time for
// reads, and inode timestamps come from the clock), and the process-global
// metrics registry is reset before each side so the flight-recorder black
// box embedded in checkpoints samples identical state.
TEST(ShardedLfsTest, SingleShardIsByteIdenticalToSeed) {
  const uint64_t kSectors = 131072;
  LfsParams params = LfsInstance::DefaultParams();

  auto drive = [](FileSystem* fs) {
    auto dir = fs->Create(kRootIno, "dir", FileType::kDirectory);
    ASSERT_TRUE(dir.ok());
    for (int i = 0; i < 24; ++i) {
      auto ino = fs->Create(*dir, "f" + std::to_string(i), FileType::kRegular);
      ASSERT_TRUE(ino.ok());
      ASSERT_TRUE(fs->Write(*ino, 0, TestBytes(4096 * (1 + i % 4), i)).ok());
      if (i % 3 == 0) {
        ASSERT_TRUE(fs->Fsync(*ino).ok());
      }
    }
    ASSERT_TRUE(fs->Rename(*dir, "f1", *dir, "renamed").ok());
    ASSERT_TRUE(fs->Unlink(*dir, "f2").ok());
    auto ino = fs->Lookup(*dir, "f3");
    ASSERT_TRUE(ino.ok());
    ASSERT_TRUE(fs->Truncate(*ino, 0).ok());
    ASSERT_TRUE(fs->Tick().ok());
    ASSERT_TRUE(fs->Sync().ok());
  };

  // Warm-up: saturate the process-global metric-name set with a throwaway
  // run of the same op sequence. ResetAll() zeroes values but keeps the
  // registered entries, so without this the first side's flight-recorder
  // black box would sample fewer metric names than the second side's.
  {
    SimClock clock;
    CpuModel cpu(&clock, 10.0);
    MemoryDisk disk(kSectors, &clock);
    ASSERT_TRUE(LfsFileSystem::Format(&disk, params).ok());
    auto fs = LfsFileSystem::Mount(&disk, &clock, &cpu);
    ASSERT_TRUE(fs.ok());
    drive(fs->get());
  }

  obs::Registry().ResetAll();
  SimClock clock_a;
  CpuModel cpu_a(&clock_a, 10.0);
  MemoryDisk disk_a(kSectors, &clock_a);
  ASSERT_TRUE(LfsFileSystem::Format(&disk_a, params).ok());
  {
    std::vector<std::byte> probe(4096);  // Mirror the router's mount probe.
    ASSERT_TRUE(disk_a.ReadSectors(0, probe).ok());
  }
  auto fs_a = LfsFileSystem::Mount(&disk_a, &clock_a, &cpu_a);
  ASSERT_TRUE(fs_a.ok());

  obs::Registry().ResetAll();
  SimClock clock_b;
  CpuModel cpu_b(&clock_b, 10.0);
  MemoryDisk disk_b(kSectors, &clock_b);
  ASSERT_TRUE(ShardedLfs::Format(&disk_b, params, /*shard_count=*/1).ok());
  auto fs_b = ShardedLfs::Mount(&disk_b, &clock_b, &cpu_b);
  ASSERT_TRUE(fs_b.ok());

  // Identical images immediately after format + mount.
  ASSERT_EQ(disk_a.RawImage().size(), disk_b.RawImage().size());
  EXPECT_EQ(std::memcmp(disk_a.RawImage().data(), disk_b.RawImage().data(),
                        disk_a.RawImage().size()),
            0);
  disk_a.ResetStats();
  disk_b.ResetStats();

  obs::Registry().ResetAll();
  drive(fs_a->get());
  obs::Registry().ResetAll();
  drive(fs_b->get());

  const DiskStats& sa = disk_a.stats();
  const DiskStats& sb = disk_b.stats();
  EXPECT_EQ(sa.read_ops, sb.read_ops);
  EXPECT_EQ(sa.write_ops, sb.write_ops);
  EXPECT_EQ(sa.sectors_read, sb.sectors_read);
  EXPECT_EQ(sa.sectors_written, sb.sectors_written);
  EXPECT_EQ(std::memcmp(disk_a.RawImage().data(), disk_b.RawImage().data(),
                        disk_a.RawImage().size()),
            0)
      << "shards=1 image diverged from the seed single-log image";

  // shards=1 must not allocate or touch an intent region: no IntentLog
  // object, no INT1 superblock extension, and no logfs.intent.* activity
  // from the run (any of these would also break the byte-identity
  // assertions above). Names may linger in the process-global registry
  // from earlier multi-shard tests, so assert on values, not presence.
  EXPECT_FALSE(fs_b->get()->intent_log_enabled());
  const LfsSuperblock& sb1 = fs_b->get()->shard(0)->superblock();
  EXPECT_FALSE(sb1.has_intent_region());
  EXPECT_EQ(sb1.intent_start_sector, 0u);
  EXPECT_EQ(sb1.intent_sectors, 0u);
  for (const char* name : {"logfs.intent.published", "logfs.intent.retired",
                           "logfs.intent.reconciled"}) {
    const obs::Counter* c = obs::Registry().FindCounter(name);
    EXPECT_TRUE(c == nullptr || c->Value() == 0) << name;
  }
}

// Regression for the native rename path: a cross-directory
// directory-over-directory rename swaps one child directory for another in
// the destination — the parent's link count must not change. (The arriving
// child's \"..\" replaces the released victim's.)
TEST(ShardedLfsTest, NativeDirOverDirCrossDirRenameKeepsNlink) {
  LfsInstance rig;
  auto d1 = rig.fs->Create(kRootIno, "d1", FileType::kDirectory);
  auto d2 = rig.fs->Create(kRootIno, "d2", FileType::kDirectory);
  ASSERT_TRUE(d1.ok() && d2.ok());
  auto src = rig.fs->Create(*d1, "m", FileType::kDirectory);
  auto victim = rig.fs->Create(*d2, "sub", FileType::kDirectory);
  ASSERT_TRUE(src.ok() && victim.ok());
  auto before = rig.fs->Stat(*d2);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(rig.fs->Rename(*d1, "m", *d2, "sub").ok());
  auto after = rig.fs->Stat(*d2);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->nlink, before->nlink);
  LfsChecker checker(rig.fs.get());
  auto report = checker.Check();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

}  // namespace
}  // namespace logfs
