// Tests for FfsChecker: clean on healthy images, detects leaked blocks,
// double references, and bitmap drift.
#include <gtest/gtest.h>

#include "src/ffs/ffs_check.h"
#include "tests/fs_fixture.h"

namespace logfs {
namespace {

TEST(FfsCheckTest, FreshFileSystemIsClean) {
  FfsInstance inst;
  FfsChecker checker(inst.fs.get());
  auto report = checker.Check();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_EQ(report->files, 0u);
  EXPECT_EQ(report->directories, 1u);
  EXPECT_EQ(report->blocks_in_use, 1u);  // Root directory data block.
}

TEST(FfsCheckTest, PopulatedTreeIsCleanAndCounted) {
  FfsInstance inst;
  ASSERT_TRUE(inst.paths->MkdirAll("/a/b").ok());
  ASSERT_TRUE(inst.paths->WriteFile("/a/b/one", TestBytes(20000, 1)).ok());
  ASSERT_TRUE(inst.paths->WriteFile("/two", TestBytes(500, 2)).ok());
  auto ino = inst.paths->Resolve("/two");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(inst.fs->Link(kRootIno, "two-alias", *ino).ok());
  FfsChecker checker(inst.fs.get());
  auto report = checker.Check();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_EQ(report->files, 2u);  // Hard link counted once.
  EXPECT_EQ(report->directories, 3u);
  EXPECT_EQ(report->total_bytes, 20500u);
}

TEST(FfsCheckTest, CleanAfterChurn) {
  FfsInstance inst;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(
          inst.paths->WriteFile("/f" + std::to_string(i), TestBytes(9000 + i, round)).ok());
    }
    for (int i = 0; i < 30; i += 2) {
      ASSERT_TRUE(inst.paths->Unlink("/f" + std::to_string(i)).ok());
    }
  }
  FfsChecker checker(inst.fs.get());
  auto report = checker.Check();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

TEST(FfsCheckTest, DetectsLeakedBlock) {
  FfsInstance inst;
  ASSERT_TRUE(inst.paths->WriteFile("/f", TestBytes(1000, 1)).ok());
  ASSERT_TRUE(inst.fs->Sync().ok());
  // Leak: allocate a block in the bitmap that nothing references.
  // (Reach in through the test's knowledge of the disk layout: flip a free
  // bit in the first group's block bitmap via a fresh mount's allocator.)
  // Simplest honest injection: allocate and forget.
  // We use the private API indirectly: write a file, then corrupt its inode
  // pointer so the block becomes unreferenced while still marked in use.
  ASSERT_TRUE(inst.paths->WriteFile("/leak", TestBytes(100, 2)).ok());
  ASSERT_TRUE(inst.fs->Sync().ok());
  auto ino = inst.paths->Resolve("/leak");
  ASSERT_TRUE(ino.ok());
  // Truncate the file's size to zero WITHOUT freeing (simulated damage):
  // overwrite the inode's direct pointer on disk directly.
  // The inode lives in group 0's table; find it via Stat + raw patch is
  // complex — instead simply flip an unused bitmap bit through the image.
  // Group 0 header is block 1; block bitmap starts after the inode bitmap.
  const FfsSuperblock& sb = inst.fs->superblock();
  const size_t inode_bitmap_bytes = sb.inodes_per_group / 8;
  // Find a high free data block in group 0 and mark it used on the RAW
  // image, then remount so the checker sees the drifted bitmap.
  std::span<std::byte> image = inst.disk->MutableRawImage();
  const uint64_t header_byte = 1ull * sb.block_size + inode_bitmap_bytes +
                               (sb.blocks_per_group / 8 - 1);
  image[header_byte] |= std::byte{0x80};  // Last block of group 0: "in use".
  auto remounted = FfsFileSystem::Mount(inst.disk.get(), inst.clock.get(), inst.cpu.get());
  ASSERT_TRUE(remounted.ok());
  FfsChecker checker(remounted->get());
  auto report = checker.Check(/*verify_data=*/false);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  bool leak_found = false;
  for (const std::string& problem : report->problems) {
    leak_found |= problem.find("leak") != std::string::npos;
  }
  EXPECT_TRUE(leak_found) << report->Summary();
}

}  // namespace
}  // namespace logfs
