// Crash-during-cleaning property tests: the cleaner relocates the only
// copies of live blocks, so a crash at any point inside a cleaning pass is
// the most dangerous moment in the system's life. The kCleanPending commit
// barrier (victims become allocatable only after the checkpoint that
// records the new homes) must make every such crash recoverable.
#include <gtest/gtest.h>

#include "src/disk/fault_disk.h"
#include "src/lfs/lfs_check.h"
#include "tests/fs_fixture.h"

namespace logfs {
namespace {

struct CleanerCrashRig {
  CleanerCrashRig() : clock(), inner(131072, &clock), fault(&inner) {
    LfsParams params = LfsInstance::DefaultParams();
    if (!LfsFileSystem::Format(&inner, params).ok()) {
      std::abort();
    }
  }

  SimClock clock;
  MemoryDisk inner;
  FaultInjectingDisk fault;
};

// Workload: build a fragmented volume with known file contents, then clean
// with a crash armed. After "reboot", the volume must mount, check clean,
// and every file that survived must carry its exact original content.
class CleanerCrashTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CleanerCrashTest, CrashMidCleaningIsRecoverable) {
  CleanerCrashRig rig;
  const int kFiles = 600;
  {
    LfsFileSystem::Options options;
    options.auto_clean = false;
    auto fs = LfsFileSystem::Mount(&rig.fault, &rig.clock, nullptr, options);
    ASSERT_TRUE(fs.ok());
    PathFs paths(fs->get());
    for (int i = 0; i < kFiles; ++i) {
      ASSERT_TRUE(paths.WriteFile("/f" + std::to_string(i), TestBytes(3000, i)).ok());
      if (i % 100 == 99) {
        ASSERT_TRUE((*fs)->Sync().ok());
      }
    }
    ASSERT_TRUE((*fs)->Sync().ok());
    // Fragment: delete two of every three files.
    for (int i = 0; i < kFiles; ++i) {
      if (i % 3 != 0) {
        ASSERT_TRUE(paths.Unlink("/f" + std::to_string(i)).ok());
      }
    }
    ASSERT_TRUE((*fs)->Sync().ok());

    // Arm the crash and clean. The cleaning pass reads victims, rewrites
    // live blocks, and checkpoints; the crash lands somewhere inside.
    rig.fault.CrashAfterWrites(GetParam(), /*torn_sectors=*/GetParam() % 5);
    (void)(*fs)->CleanNow(16);  // May fail with kCrashed — that's the point.
    rig.fault.CrashNow();
  }

  rig.fault.Reset();
  auto fs = LfsFileSystem::Mount(&rig.inner, &rig.clock, nullptr);
  ASSERT_TRUE(fs.ok()) << "mount after cleaning crash " << GetParam() << ": "
                       << fs.status().ToString();
  LfsChecker checker(fs->get());
  auto report = checker.Check();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << "crash " << GetParam() << ": " << report->Summary();

  // Every surviving file must be byte-exact. The survivors were all durable
  // (synced) before the crash, so they must ALL be present.
  PathFs paths(fs->get());
  int verified = 0;
  for (int i = 0; i < kFiles; i += 3) {
    const std::string name = "/f" + std::to_string(i);
    ASSERT_TRUE(paths.Exists(name)) << name << " lost by cleaning crash " << GetParam();
    auto back = paths.ReadFile(name);
    ASSERT_TRUE(back.ok()) << name;
    ASSERT_EQ(*back, TestBytes(3000, i)) << name;
    ++verified;
  }
  EXPECT_EQ(verified, kFiles / 3);
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, CleanerCrashTest,
                         ::testing::Values(0, 1, 2, 3, 4, 6, 9, 13, 19, 28, 42, 63, 94, 141));

// Crash while the cleaner runs under live foreground traffic.
TEST(CleanerCrashTest, CrashDuringMixedCleaningAndWrites) {
  for (uint64_t crash_at : {5u, 17u, 39u, 77u}) {
    CleanerCrashRig rig;
    {
      auto fs = LfsFileSystem::Mount(&rig.fault, &rig.clock, nullptr);
      ASSERT_TRUE(fs.ok());
      PathFs paths(fs->get());
      for (int i = 0; i < 300; ++i) {
        ASSERT_TRUE(paths.WriteFile("/base" + std::to_string(i), TestBytes(4096, i)).ok());
      }
      ASSERT_TRUE((*fs)->Sync().ok());
      for (int i = 0; i < 300; i += 2) {
        ASSERT_TRUE(paths.Unlink("/base" + std::to_string(i)).ok());
      }
      ASSERT_TRUE((*fs)->Sync().ok());
      rig.fault.CrashAfterWrites(crash_at);
      // Interleave: write, clean, write — die somewhere in the middle.
      for (int round = 0; round < 10; ++round) {
        if (!paths.WriteFile("/new" + std::to_string(round), TestBytes(20000, round)).ok()) {
          break;
        }
        if (!(*fs)->CleanNow(4).ok()) {
          break;
        }
      }
      rig.fault.CrashNow();
    }
    rig.fault.Reset();
    auto fs = LfsFileSystem::Mount(&rig.inner, &rig.clock, nullptr);
    ASSERT_TRUE(fs.ok()) << "crash_at " << crash_at;
    LfsChecker checker(fs->get());
    auto report = checker.Check();
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->ok()) << "crash_at " << crash_at << ": " << report->Summary();
    // The pre-crash durable survivors are intact.
    PathFs paths(fs->get());
    for (int i = 1; i < 300; i += 2) {
      auto back = paths.ReadFile("/base" + std::to_string(i));
      ASSERT_TRUE(back.ok()) << i << " crash_at " << crash_at;
      ASSERT_EQ(*back, TestBytes(4096, i)) << i;
    }
  }
}

}  // namespace
}  // namespace logfs
