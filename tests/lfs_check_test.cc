// Tests for LfsChecker: it must pass healthy images and detect injected
// damage (the checker is load-bearing for every property test, so its own
// detection power needs proof).
#include <gtest/gtest.h>

#include <cstring>

#include "src/lfs/lfs_check.h"
#include "tests/fs_fixture.h"

namespace logfs {
namespace {

TEST(LfsCheckTest, FreshFileSystemIsClean) {
  LfsInstance inst;
  LfsChecker checker(inst.fs.get());
  auto report = checker.Check();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_EQ(report->files, 0u);
  EXPECT_EQ(report->directories, 1u);
}

TEST(LfsCheckTest, PopulatedFileSystemIsCleanAndCounted) {
  LfsInstance inst;
  ASSERT_TRUE(inst.paths->MkdirAll("/a/b").ok());
  ASSERT_TRUE(inst.paths->WriteFile("/a/b/one", TestBytes(1000, 1)).ok());
  ASSERT_TRUE(inst.paths->WriteFile("/a/two", TestBytes(2000, 2)).ok());
  LfsChecker checker(inst.fs.get());
  auto report = checker.Check();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_EQ(report->files, 2u);
  EXPECT_EQ(report->directories, 3u);  // root, /a, /a/b.
  EXPECT_EQ(report->total_bytes, 3000u);
}

TEST(LfsCheckTest, DetectsOnDiskInodeCorruption) {
  LfsInstance inst;
  ASSERT_TRUE(inst.paths->WriteFile("/victim", TestBytes(5000, 3)).ok());
  ASSERT_TRUE(inst.fs->Sync().ok());
  // Smash the victim's on-disk inode block.
  auto ino = inst.paths->Resolve("/victim");
  ASSERT_TRUE(ino.ok());
  const DiskAddr addr = inst.fs->imap().Get(*ino).block_addr;
  ASSERT_NE(addr, kNoAddr);
  std::span<std::byte> image = inst.disk->MutableRawImage();
  std::memset(image.data() + addr * kSectorSize, 0xFF, 512);
  // The checker must notice (the inode block no longer decodes).
  LfsChecker checker(inst.fs.get());
  auto report = checker.Check(/*verify_data=*/false);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
}

TEST(LfsCheckTest, DetectsUsageTableDrift) {
  LfsInstance inst;
  ASSERT_TRUE(inst.paths->WriteFile("/f", TestBytes(100000, 4)).ok());
  ASSERT_TRUE(inst.fs->Sync().ok());
  // Corrupt the in-memory live-byte accounting for a dirty segment.
  for (uint32_t seg = 0; seg < inst.fs->superblock().num_segments; ++seg) {
    if (inst.fs->usage().Get(seg).live_bytes > 0) {
      const_cast<SegmentUsageTable&>(inst.fs->usage()).AddLive(seg, 4096);
      break;
    }
  }
  LfsChecker checker(inst.fs.get());
  auto report = checker.Check(/*verify_data=*/false);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  bool usage_problem = false;
  for (const std::string& problem : report->problems) {
    usage_problem |= problem.find("usage") != std::string::npos ||
                     problem.find("recount") != std::string::npos;
  }
  EXPECT_TRUE(usage_problem) << report->Summary();
}

TEST(LfsCheckTest, SummaryStringIsInformative) {
  LfsInstance inst;
  ASSERT_TRUE(inst.paths->WriteFile("/f", TestBytes(10, 1)).ok());
  LfsChecker checker(inst.fs.get());
  auto report = checker.Check();
  ASSERT_TRUE(report.ok());
  const std::string summary = report->Summary();
  EXPECT_NE(summary.find("CLEAN"), std::string::npos);
  EXPECT_NE(summary.find("1 files"), std::string::npos);
}

TEST(LfsCheckTest, WorksWithDefaultSizedInodeMap) {
  // Default geometry: 65536 inodes, multi-block checkpoint regions; make
  // sure the whole format -> mount -> check -> remount path holds.
  LfsParams params;  // Defaults.
  LfsInstance inst(/*sectors=*/131072, params);
  ASSERT_TRUE(inst.paths->WriteFile("/f", TestBytes(1234, 9)).ok());
  ASSERT_TRUE(inst.Remount().ok());
  auto back = inst.paths->ReadFile("/f");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, TestBytes(1234, 9));
  LfsChecker checker(inst.fs.get());
  auto report = checker.Check();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

}  // namespace
}  // namespace logfs
