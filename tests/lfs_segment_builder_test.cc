// Unit tests for SegmentBuilder: address assignment, partial-segment
// boundaries, deferred-content patching, on-disk layout verified by reading
// raw sectors back.
#include <gtest/gtest.h>

#include <cstring>

#include "src/disk/memory_disk.h"
#include "src/lfs/lfs_segment.h"
#include "src/sim/sim_clock.h"

namespace logfs {
namespace {

class SegmentBuilderTest : public ::testing::Test {
 protected:
  SegmentBuilderTest() : disk_(131072, &clock_) {
    auto geometry = ComputeLfsGeometry(LfsParams{.max_inodes = 1024}, disk_.sector_count());
    sb_ = *geometry;
    builder_ = std::make_unique<SegmentBuilder>(&disk_, sb_);
  }

  std::vector<std::byte> Block(uint8_t fill) {
    return std::vector<std::byte>(sb_.block_size, std::byte{fill});
  }

  SimClock clock_;
  MemoryDisk disk_;
  LfsSuperblock sb_;
  std::unique_ptr<SegmentBuilder> builder_;
};

TEST_F(SegmentBuilderTest, AddressesAreContiguousAfterSummary) {
  builder_->StartAt(3, 0);
  auto a = builder_->Append(BlockKind::kData, 7, 1, 0, Block(0xA1));
  auto b = builder_->Append(BlockKind::kData, 7, 1, 1, Block(0xA2));
  ASSERT_TRUE(a.ok() && b.ok());
  // Offset 0 is the summary; content starts at offset 1.
  EXPECT_EQ(*a, sb_.SegmentBlockSector(3, 1));
  EXPECT_EQ(*b, sb_.SegmentBlockSector(3, 2));
  EXPECT_EQ(builder_->pending(), 2u);
  ASSERT_TRUE(builder_->Flush(1, 0.0).ok());
  EXPECT_EQ(builder_->pending(), 0u);
  EXPECT_EQ(builder_->next_offset(), 3u);
}

TEST_F(SegmentBuilderTest, FlushedPartialDecodesFromRawSectors) {
  builder_->StartAt(0, 0);
  ASSERT_TRUE(builder_->Append(BlockKind::kData, 9, 4, 17, Block(0x55)).ok());
  ASSERT_TRUE(builder_->Append(BlockKind::kIndirect, 9, 4, 0, Block(0x66)).ok());
  ASSERT_TRUE(builder_->Flush(42, 1.5).ok());

  std::vector<std::byte> summary(sb_.block_size);
  ASSERT_TRUE(disk_.ReadSectors(sb_.SegmentBlockSector(0, 0), summary).ok());
  auto peek = PeekSummary(summary, sb_.block_size);
  ASSERT_TRUE(peek.ok());
  EXPECT_EQ(peek->seq, 42u);
  EXPECT_EQ(peek->nblocks, 2u);
  std::vector<std::byte> content(2 * sb_.block_size);
  ASSERT_TRUE(disk_.ReadSectors(sb_.SegmentBlockSector(0, 1), content).ok());
  auto decoded = DecodeSummary(summary, content);
  ASSERT_TRUE(decoded.ok());
  EXPECT_DOUBLE_EQ(decoded->timestamp, 1.5);
  ASSERT_EQ(decoded->entries.size(), 2u);
  EXPECT_EQ(decoded->entries[0].kind, BlockKind::kData);
  EXPECT_EQ(decoded->entries[0].ino, 9u);
  EXPECT_EQ(decoded->entries[0].offset, 17);
  EXPECT_EQ(decoded->entries[1].kind, BlockKind::kIndirect);
  EXPECT_EQ(content[0], std::byte{0x55});
  EXPECT_EQ(content[sb_.block_size], std::byte{0x66});
}

TEST_F(SegmentBuilderTest, CanAppendRespectsSegmentBoundary) {
  const uint32_t bps = sb_.BlocksPerSegment();
  // Start two blocks from the end: room for summary + one content block.
  builder_->StartAt(1, bps - 2);
  EXPECT_TRUE(builder_->CanAppend());
  ASSERT_TRUE(builder_->Append(BlockKind::kData, 1, 1, 0, Block(1)).ok());
  EXPECT_FALSE(builder_->CanAppend());  // Segment is exactly full now.
  ASSERT_TRUE(builder_->Flush(1, 0.0).ok());
  EXPECT_FALSE(builder_->SegmentHasRoom());
}

TEST_F(SegmentBuilderTest, CanAppendRespectsSummaryCapacity) {
  builder_->StartAt(0, 0);
  const size_t capacity = SummaryCapacity(sb_.block_size);
  ASSERT_LT(capacity, sb_.BlocksPerSegment());  // 4 KB blocks: 203 < 256.
  for (size_t i = 0; i < capacity; ++i) {
    ASSERT_TRUE(builder_->CanAppend()) << i;
    ASSERT_TRUE(builder_->Append(BlockKind::kData, 1, 1, static_cast<int64_t>(i),
                                 Block(static_cast<uint8_t>(i))).ok());
  }
  EXPECT_FALSE(builder_->CanAppend());  // Entry table full before the segment.
  ASSERT_TRUE(builder_->Flush(1, 0.0).ok());
  EXPECT_TRUE(builder_->SegmentHasRoom());  // But the segment still has space.
  EXPECT_TRUE(builder_->CanAppend());
}

TEST_F(SegmentBuilderTest, DeferredContentIsPatchedBeforeFlush) {
  builder_->StartAt(2, 0);
  std::span<std::byte> buffer;
  auto addr = builder_->AppendDeferred(BlockKind::kSegUsage, 0, 0, 0, &buffer);
  ASSERT_TRUE(addr.ok());
  // Patch after the append, before the flush.
  std::memset(buffer.data(), 0xEE, buffer.size());
  ASSERT_TRUE(builder_->Flush(7, 0.0).ok());
  std::vector<std::byte> block(sb_.block_size);
  ASSERT_TRUE(disk_.ReadSectors(*addr, block).ok());
  EXPECT_EQ(block[0], std::byte{0xEE});
  EXPECT_EQ(block[sb_.block_size - 1], std::byte{0xEE});
}

TEST_F(SegmentBuilderTest, DeferredSpansStayValidAtMaximumPartialSize) {
  // Regression test for the buffer_ reservation: fill a partial segment to
  // its maximum size entirely with deferred appends, patch every block
  // through its span only AFTER the last append, and verify the bytes land.
  // If any append reallocated the staging buffer, the earlier spans would
  // dangle and the patched bytes would be lost (or ASan would fire).
  builder_->StartAt(6, 0);
  std::vector<std::span<std::byte>> spans;
  std::vector<DiskAddr> addrs;
  while (builder_->CanAppend()) {
    std::span<std::byte> buffer;
    auto addr = builder_->AppendDeferred(BlockKind::kData, 1, 1,
                                         static_cast<int64_t>(spans.size()), &buffer);
    ASSERT_TRUE(addr.ok());
    spans.push_back(buffer);
    addrs.push_back(*addr);
  }
  ASSERT_EQ(spans.size(), std::min<size_t>(SummaryCapacity(sb_.block_size),
                                           sb_.BlocksPerSegment() - 1));
  for (size_t i = 0; i < spans.size(); ++i) {
    std::memset(spans[i].data(), static_cast<int>(i * 37 + 1), spans[i].size());
  }
  ASSERT_TRUE(builder_->Flush(3, 0.0).ok());
  std::vector<std::byte> block(sb_.block_size);
  for (size_t i = 0; i < addrs.size(); ++i) {
    ASSERT_TRUE(disk_.ReadSectors(addrs[i], block).ok());
    EXPECT_EQ(block[0], static_cast<std::byte>(i * 37 + 1)) << "block " << i;
    EXPECT_EQ(block[sb_.block_size - 1], static_cast<std::byte>(i * 37 + 1)) << "block " << i;
  }
}

TEST_F(SegmentBuilderTest, ExternalBlocksInterleaveWithOwnedOnes) {
  // AppendExternal stages a caller-owned buffer by reference; the flush must
  // stitch owned and external extents into one contiguous on-disk run and
  // the summary CRC must cover the external bytes too.
  builder_->StartAt(7, 0);
  const std::vector<std::byte> ext_a = Block(0xC1);
  const std::vector<std::byte> ext_b = Block(0xC2);
  auto a = builder_->Append(BlockKind::kData, 2, 1, 0, Block(0xB1));
  auto b = builder_->AppendExternal(BlockKind::kData, 2, 1, 1, ext_a);
  auto c = builder_->Append(BlockKind::kData, 2, 1, 2, Block(0xB2));
  auto d = builder_->AppendExternal(BlockKind::kData, 2, 1, 3, ext_b);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok() && d.ok());
  EXPECT_EQ(*b, *a + sb_.SectorsPerBlock());
  EXPECT_EQ(*d, *c + sb_.SectorsPerBlock());
  ASSERT_TRUE(builder_->Flush(9, 0.25).ok());

  std::vector<std::byte> summary(sb_.block_size);
  ASSERT_TRUE(disk_.ReadSectors(sb_.SegmentBlockSector(7, 0), summary).ok());
  std::vector<std::byte> content(4 * sb_.block_size);
  ASSERT_TRUE(disk_.ReadSectors(sb_.SegmentBlockSector(7, 1), content).ok());
  auto decoded = DecodeSummary(summary, content);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->entries.size(), 4u);
  EXPECT_EQ(content[0 * sb_.block_size], std::byte{0xB1});
  EXPECT_EQ(content[1 * sb_.block_size], std::byte{0xC1});
  EXPECT_EQ(content[2 * sb_.block_size], std::byte{0xB2});
  EXPECT_EQ(content[3 * sb_.block_size], std::byte{0xC2});
}

TEST_F(SegmentBuilderTest, ExternalBlockMustBeExactlyOneBlock) {
  builder_->StartAt(8, 0);
  std::vector<std::byte> runt(sb_.block_size - 1);
  EXPECT_FALSE(builder_->AppendExternal(BlockKind::kData, 1, 1, 0, runt).ok());
}

TEST_F(SegmentBuilderTest, EmptyFlushIsANoOp) {
  builder_->StartAt(5, 10);
  const uint64_t writes_before = disk_.stats().write_ops;
  ASSERT_TRUE(builder_->Flush(1, 0.0).ok());
  EXPECT_EQ(disk_.stats().write_ops, writes_before);
  EXPECT_EQ(builder_->next_offset(), 10u);
}

TEST_F(SegmentBuilderTest, MultiplePartialsChainWithinASegment) {
  builder_->StartAt(4, 0);
  ASSERT_TRUE(builder_->Append(BlockKind::kData, 1, 1, 0, Block(1)).ok());
  ASSERT_TRUE(builder_->Flush(10, 0.0).ok());
  ASSERT_TRUE(builder_->Append(BlockKind::kData, 1, 1, 1, Block(2)).ok());
  ASSERT_TRUE(builder_->Append(BlockKind::kData, 1, 1, 2, Block(3)).ok());
  ASSERT_TRUE(builder_->Flush(11, 0.0).ok());

  // Walk the chain the way the cleaner does.
  std::vector<std::byte> summary(sb_.block_size);
  uint32_t offset = 0;
  std::vector<uint64_t> seqs;
  while (true) {
    ASSERT_TRUE(disk_.ReadSectors(sb_.SegmentBlockSector(4, offset), summary).ok());
    auto peek = PeekSummary(summary, sb_.block_size);
    if (!peek.ok()) {
      break;
    }
    seqs.push_back(peek->seq);
    offset += 1 + peek->nblocks;
  }
  EXPECT_EQ(seqs, (std::vector<uint64_t>{10, 11}));
}

}  // namespace
}  // namespace logfs
