// Conformance suite for the vectored (scatter-gather) BlockDevice API,
// run against every implementation: MemoryDisk (native), StripedDisk
// (stripe-boundary splitting), FaultInjectingDisk / TracingDisk /
// crashsim::RecordingDisk (decorators), and the base-class bounce-buffer
// fallback. The contract under test: a vectored request behaves exactly
// like the scalar request on the coalesced buffer — same bytes, same
// single-operation stats and timing, same trace/journal/fault accounting —
// for any carve-up of the payload, sector-aligned or not.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/crashsim/recording_disk.h"
#include "src/disk/fault_disk.h"
#include "src/disk/memory_disk.h"
#include "src/disk/striped_disk.h"
#include "src/disk/tracing_disk.h"
#include "src/sim/sim_clock.h"

namespace logfs {
namespace {

constexpr uint64_t kSectors = 4096;

std::vector<std::byte> Pattern(size_t bytes, uint8_t seed) {
  std::vector<std::byte> data(bytes);
  for (size_t i = 0; i < bytes; ++i) {
    data[i] = static_cast<std::byte>(seed + 3 * i);
  }
  return data;
}

// Splits `data` into spans at the given byte offsets (may include empty
// pieces and pieces that are not sector multiples).
std::vector<std::span<const std::byte>> Carve(std::span<const std::byte> data,
                                              const std::vector<size_t>& cuts) {
  std::vector<std::span<const std::byte>> parts;
  size_t prev = 0;
  for (size_t cut : cuts) {
    parts.push_back(data.subspan(prev, cut - prev));
    prev = cut;
  }
  parts.push_back(data.subspan(prev));
  return parts;
}

std::vector<std::span<std::byte>> CarveMutable(std::span<std::byte> data,
                                               const std::vector<size_t>& cuts) {
  std::vector<std::span<std::byte>> parts;
  size_t prev = 0;
  for (size_t cut : cuts) {
    parts.push_back(data.subspan(prev, cut - prev));
    prev = cut;
  }
  parts.push_back(data.subspan(prev));
  return parts;
}

// Decorator that deliberately does NOT override the vectored entry points,
// so the base-class bounce-buffer fallback is what gets exercised.
class ForwardingDisk : public BlockDevice {
 public:
  explicit ForwardingDisk(BlockDevice* inner) : inner_(inner) {}
  Status ReadSectors(uint64_t first, std::span<std::byte> out, IoOptions options = {}) override {
    return inner_->ReadSectors(first, out, options);
  }
  Status WriteSectors(uint64_t first, std::span<const std::byte> data,
                      IoOptions options = {}) override {
    return inner_->WriteSectors(first, data, options);
  }
  Status Flush() override { return inner_->Flush(); }
  uint64_t sector_count() const override { return inner_->sector_count(); }
  const DiskStats& stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

 private:
  BlockDevice* inner_;
};

enum class Impl {
  kMemory,
  kStriped,
  kFault,
  kTracing,
  kRecording,
  kDefaultFallback,
};

// One assembled device stack. Members the given Impl does not need stay
// null; `dut` points at the device under test.
struct Stack {
  std::unique_ptr<SimClock> clock;
  std::unique_ptr<MemoryDisk> base;
  std::unique_ptr<StripedDisk> striped;
  std::unique_ptr<FaultInjectingDisk> fault;
  std::unique_ptr<TracingDisk> tracing;
  std::unique_ptr<RecordingDisk> recording;
  std::unique_ptr<ForwardingDisk> forwarding;
  BlockDevice* dut = nullptr;
};

Stack MakeStack(Impl impl) {
  Stack s;
  s.clock = std::make_unique<SimClock>();
  switch (impl) {
    case Impl::kMemory:
      s.base = std::make_unique<MemoryDisk>(kSectors, s.clock.get());
      s.dut = s.base.get();
      break;
    case Impl::kStriped:
      s.striped = std::make_unique<StripedDisk>(4, kSectors / 4, /*stripe_sectors=*/8,
                                                s.clock.get());
      s.dut = s.striped.get();
      break;
    case Impl::kFault:
      s.base = std::make_unique<MemoryDisk>(kSectors, s.clock.get());
      s.fault = std::make_unique<FaultInjectingDisk>(s.base.get());
      s.dut = s.fault.get();
      break;
    case Impl::kTracing:
      s.base = std::make_unique<MemoryDisk>(kSectors, s.clock.get());
      s.tracing = std::make_unique<TracingDisk>(s.base.get(), s.clock.get());
      s.dut = s.tracing.get();
      break;
    case Impl::kRecording:
      s.base = std::make_unique<MemoryDisk>(kSectors, s.clock.get());
      s.recording = std::make_unique<RecordingDisk>(s.base.get());
      s.dut = s.recording.get();
      break;
    case Impl::kDefaultFallback:
      s.base = std::make_unique<MemoryDisk>(kSectors, s.clock.get());
      s.forwarding = std::make_unique<ForwardingDisk>(s.base.get());
      s.dut = s.forwarding.get();
      break;
  }
  return s;
}

const char* ImplName(Impl impl) {
  switch (impl) {
    case Impl::kMemory: return "MemoryDisk";
    case Impl::kStriped: return "StripedDisk";
    case Impl::kFault: return "FaultInjectingDisk";
    case Impl::kTracing: return "TracingDisk";
    case Impl::kRecording: return "RecordingDisk";
    case Impl::kDefaultFallback: return "DefaultFallback";
  }
  return "?";
}

class VectoredIoTest : public testing::TestWithParam<Impl> {};

// Irregular carve-up: unaligned cuts, an empty middle piece.
const std::vector<size_t> kCuts = {1, 700, 700, 2048, 6143};

TEST_P(VectoredIoTest, GatherWriteScatterReadRoundTrip) {
  Stack s = MakeStack(GetParam());
  const auto data = Pattern(16 * kSectorSize, 11);
  ASSERT_TRUE(s.dut->WriteSectorsV(32, Carve(data, kCuts)).ok());

  // Scalar read sees the coalesced bytes.
  std::vector<std::byte> flat(data.size());
  ASSERT_TRUE(s.dut->ReadSectors(32, flat).ok());
  EXPECT_EQ(flat, data);

  // Scatter read through a different carve-up reassembles them too.
  std::vector<std::byte> scattered(data.size());
  ASSERT_TRUE(s.dut->ReadSectorsV(32, CarveMutable(scattered, {300, 4096, 5000})).ok());
  EXPECT_EQ(scattered, data);
}

TEST_P(VectoredIoTest, StatsAndTimingMatchScalarPath) {
  Stack vectored = MakeStack(GetParam());
  Stack scalar = MakeStack(GetParam());
  const auto a = Pattern(16 * kSectorSize, 3);
  const auto b = Pattern(8 * kSectorSize, 5);

  ASSERT_TRUE(vectored.dut->WriteSectorsV(0, Carve(a, kCuts)).ok());
  ASSERT_TRUE(vectored.dut->WriteSectorsV(64, Carve(b, {513})).ok());
  std::vector<std::byte> out(a.size());
  ASSERT_TRUE(vectored.dut->ReadSectorsV(0, CarveMutable(out, {97})).ok());

  ASSERT_TRUE(scalar.dut->WriteSectors(0, a).ok());
  ASSERT_TRUE(scalar.dut->WriteSectors(64, b).ok());
  ASSERT_TRUE(scalar.dut->ReadSectors(0, out).ok());

  // One operation per request, identical sector counts, identical simulated
  // service time — vectoring must be invisible to the simulation.
  EXPECT_EQ(vectored.dut->stats().ToString(), scalar.dut->stats().ToString());
  EXPECT_DOUBLE_EQ(vectored.clock->Now(), scalar.clock->Now());
  EXPECT_EQ(vectored.dut->stats().write_ops, 2u);
  EXPECT_EQ(vectored.dut->stats().read_ops, 1u);
}

TEST_P(VectoredIoTest, RejectsBadExtents) {
  Stack s = MakeStack(GetParam());
  std::vector<std::byte> sector(kSectorSize);
  std::vector<std::byte> partial(100);

  // Total not a multiple of the sector size.
  const std::span<const std::byte> ragged[] = {sector, partial};
  EXPECT_FALSE(s.dut->WriteSectorsV(0, ragged).ok());

  // Empty vector (zero total).
  EXPECT_FALSE(s.dut->WriteSectorsV(0, {}).ok());

  // Extent past the end of the device.
  const std::span<const std::byte> one[] = {sector};
  EXPECT_FALSE(s.dut->WriteSectorsV(s.dut->sector_count(), one).ok());

  std::vector<std::byte> out(kSectorSize);
  const std::span<std::byte> mut[] = {out};
  EXPECT_FALSE(s.dut->ReadSectorsV(s.dut->sector_count(), mut).ok());
}

INSTANTIATE_TEST_SUITE_P(AllImpls, VectoredIoTest,
                         testing::Values(Impl::kMemory, Impl::kStriped, Impl::kFault,
                                         Impl::kTracing, Impl::kRecording,
                                         Impl::kDefaultFallback),
                         [](const testing::TestParamInfo<Impl>& param_info) {
                           return ImplName(param_info.param);
                         });

TEST(StripedVectoredTest, BuffersStraddlingStripeBoundariesLandCorrectly) {
  // stripe_sectors = 8 → a 24-sector write starting at sector 4 crosses
  // three stripe boundaries; carve it so no buffer edge coincides with one.
  SimClock clock;
  StripedDisk striped(4, kSectors / 4, 8, &clock);
  const auto data = Pattern(24 * kSectorSize, 9);
  ASSERT_TRUE(striped.WriteSectorsV(4, Carve(data, {3000, 3000, 9000, 12287})).ok());
  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(striped.ReadSectors(4, out).ok());
  EXPECT_EQ(out, data);

  // Per-member accounting matches the scalar path run by run (the reference
  // stack replays the same write + verification read).
  SimClock clock2;
  StripedDisk reference(4, kSectors / 4, 8, &clock2);
  ASSERT_TRUE(reference.WriteSectors(4, data).ok());
  ASSERT_TRUE(reference.ReadSectors(4, out).ok());
  for (uint32_t m = 0; m < 4; ++m) {
    EXPECT_EQ(striped.member(m).stats().ToString(), reference.member(m).stats().ToString())
        << "member " << m;
  }
}

TEST(FaultVectoredTest, CrashAfterSectorsTearsMidBuffer) {
  SimClock clock;
  MemoryDisk base(kSectors, &clock);
  FaultInjectingDisk fault(&base);
  const auto data = Pattern(8 * kSectorSize, 21);

  // Budget of 3 sectors lands inside the second buffer of the vector.
  fault.CrashAfterSectors(3, /*torn=*/true);
  const auto parts = Carve(data, {kSectorSize, 5 * kSectorSize});
  EXPECT_FALSE(fault.WriteSectorsV(0, parts).ok());
  EXPECT_TRUE(fault.crashed());
  EXPECT_EQ(fault.sectors_written_seen(), 3u);

  // Exactly the first 3 sectors persisted; the rest of the medium is
  // untouched (zero).
  std::vector<std::byte> out(8 * kSectorSize);
  ASSERT_TRUE(base.ReadSectors(0, out).ok());
  EXPECT_TRUE(std::equal(out.begin(), out.begin() + 3 * kSectorSize, data.begin()));
  for (size_t i = 3 * kSectorSize; i < out.size(); ++i) {
    ASSERT_EQ(out[i], std::byte{0}) << "byte " << i << " leaked past the torn prefix";
  }
}

TEST(FaultVectoredTest, CrashAfterSectorsRequestAtomicDropsWholeVector) {
  SimClock clock;
  MemoryDisk base(kSectors, &clock);
  FaultInjectingDisk fault(&base);
  const auto data = Pattern(8 * kSectorSize, 33);

  fault.CrashAfterSectors(3, /*torn=*/false);
  EXPECT_FALSE(fault.WriteSectorsV(0, Carve(data, {600})).ok());
  EXPECT_TRUE(fault.crashed());
  std::vector<std::byte> out(8 * kSectorSize);
  ASSERT_TRUE(base.ReadSectors(0, out).ok());
  for (std::byte b : out) {
    ASSERT_EQ(b, std::byte{0});
  }
}

TEST(FaultVectoredTest, CrashAfterWritesTearsVectoredRequest) {
  SimClock clock;
  MemoryDisk base(kSectors, &clock);
  FaultInjectingDisk fault(&base);
  const auto data = Pattern(4 * kSectorSize, 40);

  fault.CrashAfterWrites(1, /*torn_sectors=*/2);
  ASSERT_TRUE(fault.WriteSectorsV(100, Carve(data, {700})).ok());  // Survives.
  EXPECT_FALSE(fault.WriteSectorsV(0, Carve(data, {700})).ok());   // Torn at 2 sectors.
  EXPECT_TRUE(fault.crashed());

  std::vector<std::byte> out(4 * kSectorSize);
  ASSERT_TRUE(base.ReadSectors(0, out).ok());
  EXPECT_TRUE(std::equal(out.begin(), out.begin() + 2 * kSectorSize, data.begin()));
  for (size_t i = 2 * kSectorSize; i < out.size(); ++i) {
    ASSERT_EQ(out[i], std::byte{0});
  }
  // Every subsequent request fails: the device is off.
  EXPECT_FALSE(fault.ReadSectorsV(0, CarveMutable(out, {512})).ok());
}

TEST(RecordingVectoredTest, JournalsVectorAsOneRecord) {
  SimClock clock;
  MemoryDisk base(kSectors, &clock);
  RecordingDisk recording(&base);
  const auto data = Pattern(6 * kSectorSize, 55);

  ASSERT_TRUE(recording.WriteSectorsV(10, Carve(data, {100, 3000}), {}).ok());
  ASSERT_EQ(recording.write_count(), 1u);
  EXPECT_EQ(recording.writes()[0].first, 10u);
  EXPECT_EQ(recording.writes()[0].data, data);
  EXPECT_EQ(recording.writes()[0].SectorCount(), 6u);
  EXPECT_EQ(recording.writes()[0].epoch, 0u);

  // A synchronous vectored write still barriers into its own epoch.
  ASSERT_TRUE(recording
                  .WriteSectorsV(20, Carve(data, {3072}), IoOptions{.synchronous = true})
                  .ok());
  ASSERT_EQ(recording.write_count(), 2u);
  EXPECT_EQ(recording.writes()[1].epoch, 1u);
  EXPECT_TRUE(recording.writes()[1].synchronous);
  EXPECT_EQ(recording.current_epoch(), 2u);
}

}  // namespace
}  // namespace logfs
