// Cross-shard intent log and online repairer (ctest -L "crash|fault").
//
// Covers the pieces of the crash-atomicity machinery the image sweep
// (sharded_crash_test.cc) exercises only indirectly:
//   * the intent slot codec — round-trip, garbage rejection, CRC sealing;
//   * ring-full behavior — the router drains (sync + retire) and retries,
//     so a burst of cross-shard ops larger than the ring still succeeds;
//   * fault injection on the intent region — a persistent media error
//     fails the op cleanly with NO shard mutated, and a transient error
//     is absorbed by the ResilientDisk retry layer (the op succeeds);
//   * the online repairer — CheckShardedLfs(..., RepairMode::kRepair)
//     fixes seeded pre-intent-log damage (dangling dirents, orphans,
//     wrong nlinks) in place and reports a clean post-repair state.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/disk/fault_disk.h"
#include "src/disk/memory_disk.h"
#include "src/lfs/lfs_format.h"
#include "src/lfs/lfs_intent.h"
#include "src/lfs/sharded_lfs.h"
#include "tests/fs_fixture.h"

namespace logfs {
namespace {

constexpr uint64_t kSectors = 65536;
constexpr uint32_t kShards = 4;

LfsParams RigParams() {
  LfsParams params;
  params.max_inodes = 1024;
  params.segment_size = 1 << 19;
  params.clean_start_segments = 3;
  params.clean_stop_segments = 5;
  params.reserved_segments = 2;
  return params;
}

// A sharded mount over a fault-injecting disk (no faults armed by default).
struct ShardedRig {
  ShardedRig() {
    clock = std::make_unique<SimClock>();
    cpu = std::make_unique<CpuModel>(clock.get(), 10.0);
    inner = std::make_unique<MemoryDisk>(kSectors, clock.get());
    fault = std::make_unique<FaultInjectingDisk>(inner.get());
    EXPECT_TRUE(ShardedLfs::Format(inner.get(), RigParams(), kShards).ok());
    auto mounted = ShardedLfs::Mount(fault.get(), clock.get(), cpu.get());
    EXPECT_TRUE(mounted.ok());
    fs = std::move(mounted).value();
  }

  // A directory under root whose home shard differs from `not_shard`.
  // Directory placement hashes (parent, name), so a handful of candidates
  // always yields one.
  InodeNum DirOnOtherShard(uint32_t not_shard, const std::string& prefix) {
    for (int i = 0;; ++i) {
      const std::string name = prefix + std::to_string(i);
      auto ino = fs->Create(kRootIno, name, FileType::kDirectory);
      EXPECT_TRUE(ino.ok());
      if (fs->ShardOf(*ino) != not_shard) {
        return *ino;
      }
      EXPECT_TRUE(fs->Rmdir(kRootIno, name).ok());
    }
  }

  std::unique_ptr<SimClock> clock;
  std::unique_ptr<CpuModel> cpu;
  std::unique_ptr<MemoryDisk> inner;
  std::unique_ptr<FaultInjectingDisk> fault;
  std::unique_ptr<ShardedLfs> fs;
};

// --- codec -------------------------------------------------------------------

TEST(IntentCodecTest, RoundTripsEveryField) {
  IntentRecord rec;
  rec.op_id = 0x1122334455667788ull;
  rec.kind = IntentKind::kRename;
  rec.from_dir = 7;
  rec.to_dir = 10;
  rec.child = 13;
  rec.victim = 22;
  rec.child_type = FileType::kDirectory;
  rec.victim_type = FileType::kRegular;
  rec.from_name = "old-name";
  rec.to_name = "new-name";

  std::vector<std::byte> slot(kIntentSlotBytes);
  ASSERT_TRUE(EncodeIntentSlot(rec, IntentState::kPending, slot).ok());
  auto decoded = DecodeIntentSlot(slot);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->second, IntentState::kPending);
  EXPECT_EQ(decoded->first.op_id, rec.op_id);
  EXPECT_EQ(decoded->first.kind, IntentKind::kRename);
  EXPECT_EQ(decoded->first.from_dir, 7u);
  EXPECT_EQ(decoded->first.to_dir, 10u);
  EXPECT_EQ(decoded->first.child, 13u);
  EXPECT_EQ(decoded->first.victim, 22u);
  EXPECT_EQ(decoded->first.child_type, FileType::kDirectory);
  EXPECT_EQ(decoded->first.victim_type, FileType::kRegular);
  EXPECT_EQ(decoded->first.from_name, "old-name");
  EXPECT_EQ(decoded->first.to_name, "new-name");
}

TEST(IntentCodecTest, RejectsGarbageAndBitFlips) {
  // All-zero slot (a freshly formatted region): no record.
  std::vector<std::byte> zeros(kIntentSlotBytes);
  EXPECT_FALSE(DecodeIntentSlot(zeros).ok());

  // A valid record with any byte of its encoding flipped must fail the
  // CRC — a half-written or bit-rotted slot can never masquerade as a
  // DIFFERENT pending intent. (Bytes past the encoded record are outside
  // the seal; flipping them changes nothing the decoder reads.)
  IntentRecord rec;
  rec.op_id = 42;
  rec.kind = IntentKind::kCreate;
  rec.from_dir = 1;
  rec.child = 6;
  rec.child_type = FileType::kRegular;
  rec.from_name = "victim-of-a-tear";
  std::vector<std::byte> slot(kIntentSlotBytes);
  ASSERT_TRUE(EncodeIntentSlot(rec, IntentState::kPending, slot).ok());
  for (size_t i = 0; i < 52; ++i) {  // Header + both encoded names.
    std::vector<std::byte> bent = slot;
    bent[i] ^= std::byte{0x40};
    EXPECT_FALSE(DecodeIntentSlot(bent).ok()) << "byte " << i;
  }

  // Torn at the sector boundary: the record lives entirely in the slot's
  // first sector (sector writes are atomic in the crash model), so a
  // mid-slot tear leaves either pre-tear garbage or the INTACT record —
  // never a different one. An intact pending record for an op that never
  // started is safe: reconciliation probes the shards, finds no half
  // applied, and settles it as a no-op.
  std::vector<std::byte> torn = slot;
  std::fill(torn.begin() + kSectorSize, torn.end(), std::byte{0xEE});
  auto after_tear = DecodeIntentSlot(torn);
  ASSERT_TRUE(after_tear.ok());
  EXPECT_EQ(after_tear->first.op_id, rec.op_id);
  EXPECT_EQ(after_tear->first.from_name, rec.from_name);
}

// --- ring-full drain ---------------------------------------------------------

TEST(ShardedIntentTest, BurstLargerThanRingDrainsAndSucceeds) {
  ShardedRig rig;
  ASSERT_TRUE(rig.fs->intent_log_enabled());
  const InodeNum d0 = rig.DirOnOtherShard(99, "burst-a");  // any shard
  const InodeNum d1 = rig.DirOnOtherShard(rig.fs->ShardOf(d0), "burst-b");
  ASSERT_TRUE(rig.fs->Sync().ok());

  // Each iteration is a cross-shard rename there and back: two intents,
  // no intervening sync. 2 * 48 = 96 publishes > the 64-slot ring, so the
  // router must hit kBusy and transparently drain.
  auto f = rig.fs->Create(d0, "ball", FileType::kRegular);
  ASSERT_TRUE(f.ok());
  for (int i = 0; i < 48; ++i) {
    ASSERT_TRUE(rig.fs->Rename(d0, "ball", d1, "ball").ok()) << i;
    ASSERT_TRUE(rig.fs->Rename(d1, "ball", d0, "ball").ok()) << i;
  }
  EXPECT_LE(rig.fs->intent_log()->PendingCount(), kIntentSlots);

  ASSERT_TRUE(rig.fs->Sync().ok());
  EXPECT_EQ(rig.fs->intent_log()->PendingCount(), 0u)
      << "sync must retire every published intent";
  auto report = CheckShardedLfs(rig.fs.get());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

// --- fault injection on the intent region ------------------------------------

TEST(ShardedIntentTest, MediaErrorOnIntentRegionFailsOpWithNoShardMutated) {
  ShardedRig rig;
  const InodeNum d0 = rig.DirOnOtherShard(99, "med-a");
  const InodeNum d1 = rig.DirOnOtherShard(rig.fs->ShardOf(d0), "med-b");
  auto f = rig.fs->Create(d0, "precious", FileType::kRegular);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(rig.fs->Sync().ok());

  // Kill the whole intent region for writes: every publish attempt fails
  // persistently, so the op must abort before ANY shard mutates.
  const LfsSuperblock& sb = rig.fs->shard(0)->superblock();
  ASSERT_TRUE(sb.has_intent_region());
  rig.fault->MarkBadSectors(sb.intent_start_sector, sb.intent_sectors,
                            FaultInjectingDisk::BadSectorMode::kWrite);

  Status moved = rig.fs->Rename(d0, "precious", d1, "stolen");
  EXPECT_FALSE(moved.ok());
  EXPECT_EQ(moved.code(), ErrorCode::kMediaError) << moved.ToString();

  // Nothing happened: source present, destination absent, namespace clean.
  EXPECT_TRUE(rig.fs->Lookup(d0, "precious").ok());
  EXPECT_EQ(rig.fs->Lookup(d1, "stolen").status().code(), ErrorCode::kNotFound);
  auto report = CheckShardedLfs(rig.fs.get());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();

  // Cross-shard creates abort the same way, with the peeked ino never
  // allocated.
  auto blocked = rig.fs->Create(kRootIno, "zz-never-lands", FileType::kDirectory);
  if (!blocked.ok()) {  // Same-shard placement would bypass the intent log.
    EXPECT_EQ(blocked.status().code(), ErrorCode::kMediaError);
    auto recheck = CheckShardedLfs(rig.fs.get());
    ASSERT_TRUE(recheck.ok());
    EXPECT_TRUE(recheck->ok()) << recheck->Summary();
  }
}

TEST(ShardedIntentTest, TransientErrorOnIntentWriteIsRetriedThrough) {
  ShardedRig rig;
  const InodeNum d0 = rig.DirOnOtherShard(99, "tr-a");
  const InodeNum d1 = rig.DirOnOtherShard(rig.fs->ShardOf(d0), "tr-b");
  auto f = rig.fs->Create(d0, "wobbly", FileType::kRegular);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(rig.fs->Sync().ok());

  // The FIRST write of a cross-shard rename is the intent publish — that
  // is the whole point of the write-ahead discipline — so failing the next
  // write request transiently hits exactly the intent write. The
  // ResilientDisk in front of the region retries and the op succeeds.
  rig.fault->FailNthWrite(rig.fault->write_requests_seen());
  ASSERT_TRUE(rig.fs->Rename(d0, "wobbly", d1, "steady").ok());
  EXPECT_TRUE(rig.fs->Lookup(d1, "steady").ok());
  EXPECT_EQ(rig.fault->transient_write_errors_injected(), 1u);

  ASSERT_TRUE(rig.fs->Sync().ok());
  auto report = CheckShardedLfs(rig.fs.get());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

// --- the online repairer -----------------------------------------------------

TEST(ShardedIntentTest, RepairModeFixesSeededPreIntentDamage) {
  ShardedRig rig;
  const InodeNum d0 = rig.DirOnOtherShard(99, "rep-a");
  const InodeNum d1 = rig.DirOnOtherShard(rig.fs->ShardOf(d0), "rep-b");
  auto keep = rig.fs->Create(d0, "keep", FileType::kRegular);
  ASSERT_TRUE(keep.ok());
  ASSERT_TRUE(rig.fs->Write(*keep, 0, TestBytes(4096, 7)).ok());
  ASSERT_TRUE(rig.fs->Sync().ok());

  // Seed exactly the damage a pre-intent-log crash leaves, via direct seam
  // calls (the documented test/tool backdoor — the router is quiescent):
  //   1. a dangling dirent: names an ino that was never allocated;
  //   2. an orphan: an allocated inode no dirent references;
  //   3. a wrong nlink on a healthy file.
  LfsFileSystem* d1_home = rig.fs->shard(rig.fs->ShardOf(d1));
  ASSERT_TRUE(d1_home
                  ->ShardAddEntry(d1, "dangles", *keep + 4 * kShards,
                                  FileType::kRegular, /*child_is_dir=*/false)
                  .ok());
  uint32_t orphan_shard = (rig.fs->ShardOf(d0) + 1) % kShards;
  auto orphan = rig.fs->shard(orphan_shard)->ShardAllocInode(FileType::kRegular, d0);
  ASSERT_TRUE(orphan.ok());
  LfsFileSystem* keep_home = rig.fs->shard(rig.fs->ShardOf(*keep));
  ASSERT_TRUE(keep_home->ShardSetNlink(*keep, 5).ok());

  // Check-only: all three show up, nothing is touched.
  auto before = CheckShardedLfs(rig.fs.get(), /*verify_data=*/true);
  ASSERT_TRUE(before.ok());
  EXPECT_GE(before->problems.size(), 3u) << before->Summary();
  EXPECT_EQ(before->repairs_applied, 0u);

  // Repair mode: fixes everything in place and reports the POST-repair
  // state — clean, with the edits recorded.
  auto repaired = CheckShardedLfs(rig.fs.get(), /*verify_data=*/true,
                                  RepairMode::kRepair);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(repaired->ok()) << repaired->Summary();
  EXPECT_GT(repaired->repairs_applied, 0u);
  EXPECT_FALSE(repaired->repair_actions.empty());

  // The repair is durable and honestly reported: a plain re-check agrees,
  // and the healthy file still has its bytes.
  auto after = CheckShardedLfs(rig.fs.get());
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->ok()) << after->Summary();
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(rig.fs->Read(*keep, 0, out).ok());
  EXPECT_EQ(out, TestBytes(4096, 7));
  auto stat = rig.fs->Stat(*keep);
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->nlink, 1u);
}

// Orphans that survive repair land in a per-shard lost+found rather than
// being destroyed: an allocated directory with children must be reattached
// or preserved, never silently reaped.
TEST(ShardedIntentTest, RepairPreservesUndecidableOrphansInLostFound) {
  ShardedRig rig;
  const InodeNum d0 = rig.DirOnOtherShard(99, "lf-a");
  ASSERT_TRUE(rig.fs->Sync().ok());

  // An allocated file inode with no referencing dirent and no intent
  // explaining it: the repairer cannot prove it was mid-create, so it must
  // preserve it under lost+found.<shard>.
  uint32_t orphan_shard = (rig.fs->ShardOf(d0) + 1) % kShards;
  auto orphan = rig.fs->shard(orphan_shard)->ShardAllocInode(FileType::kRegular, d0);
  ASSERT_TRUE(orphan.ok());

  auto repaired = CheckShardedLfs(rig.fs.get(), /*verify_data=*/true,
                                  RepairMode::kRepair);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(repaired->ok()) << repaired->Summary();

  // The orphan is reachable again, under root's lost+found for its shard.
  const std::string lf = "lost+found." + std::to_string(orphan_shard);
  auto lf_dir = rig.fs->Lookup(kRootIno, lf);
  ASSERT_TRUE(lf_dir.ok()) << "no " << lf << " after repair";
  auto entries = rig.fs->ReadDir(*lf_dir);
  ASSERT_TRUE(entries.ok());
  bool found = false;
  for (const DirEntry& e : *entries) {
    found = found || e.ino == *orphan;
  }
  EXPECT_TRUE(found) << "orphan ino " << *orphan << " not reattached under " << lf;
}

}  // namespace
}  // namespace logfs
