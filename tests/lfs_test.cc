// Functional tests for LfsFileSystem: format/mount, namespace ops, file
// I/O, checkpoint persistence, the no-synchronous-write property, and the
// consistency checker on healthy images.
#include <gtest/gtest.h>

#include "src/disk/tracing_disk.h"
#include "src/lfs/lfs_check.h"
#include "tests/fs_fixture.h"

namespace logfs {
namespace {

Status ExpectClean(LfsFileSystem* fs) {
  LfsChecker checker(fs);
  ASSIGN_OR_RETURN(LfsCheckReport report, checker.Check());
  if (!report.ok()) {
    return CorruptedError(report.Summary());
  }
  return OkStatus();
}

TEST(LfsFormatTest, FormatAndMountEmpty) {
  LfsInstance inst;
  auto stat = inst.fs->Stat(kRootIno);
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->type, FileType::kDirectory);
  EXPECT_EQ(stat->nlink, 2);
  auto entries = inst.fs->ReadDir(kRootIno);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
  EXPECT_TRUE(ExpectClean(inst.fs.get()).ok());
}

TEST(LfsFormatTest, MountFailsOnBlankDisk) {
  SimClock clock;
  MemoryDisk disk(131072, &clock);
  EXPECT_FALSE(LfsFileSystem::Mount(&disk, &clock, nullptr).ok());
}

TEST(LfsTest, CreateWriteReadDelete) {
  LfsInstance inst;
  auto data = TestBytes(5000, 1);
  ASSERT_TRUE(inst.paths->WriteFile("/f", data).ok());
  auto back = inst.paths->ReadFile("/f");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
  ASSERT_TRUE(inst.paths->Unlink("/f").ok());
  EXPECT_FALSE(inst.paths->Exists("/f"));
  EXPECT_TRUE(ExpectClean(inst.fs.get()).ok());
}

TEST(LfsTest, CreatePerformsNoSynchronousOrRandomWrites) {
  // The Figure 2 property: small-file creation causes no synchronous disk
  // writes, and the eventual flush is one sequential transfer.
  SimClock clock;
  MemoryDisk inner(131072, &clock);
  ASSERT_TRUE(LfsFileSystem::Format(&inner, LfsInstance::DefaultParams()).ok());
  TracingDisk traced(&inner, &clock);
  auto fs = LfsFileSystem::Mount(&traced, &clock, nullptr);
  ASSERT_TRUE(fs.ok());
  PathFs paths(fs->get());

  traced.ClearTrace();
  ASSERT_TRUE(paths.Mkdir("/dir1").ok());
  ASSERT_TRUE(paths.Mkdir("/dir2").ok());
  ASSERT_TRUE(paths.WriteFile("/dir1/file1", TestBytes(4096, 1)).ok());
  ASSERT_TRUE(paths.WriteFile("/dir2/file2", TestBytes(4096, 2)).ok());
  // Nothing hit the disk yet: all changes sit in the cache.
  EXPECT_EQ(traced.WriteRequestCount(), 0u);

  ASSERT_TRUE((*fs)->Sync().ok());
  EXPECT_EQ(traced.SyncWriteRequestCount(), 1u);  // Only the checkpoint region.
  // The log writes form a small number of large sequential transfers, not
  // 8 scattered small ones.
  EXPECT_LE(traced.NonSequentialWriteCount(), 3u);
}

TEST(LfsTest, DataSurvivesCheckpointAndRemount) {
  LfsInstance inst;
  ASSERT_TRUE(inst.paths->MkdirAll("/a/b").ok());
  ASSERT_TRUE(inst.paths->WriteFile("/a/b/f", TestBytes(20000, 3)).ok());
  ASSERT_TRUE(inst.Remount().ok());
  auto back = inst.paths->ReadFile("/a/b/f");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, TestBytes(20000, 3));
  EXPECT_TRUE(ExpectClean(inst.fs.get()).ok());
}

TEST(LfsTest, ReadAfterDropCachesGoesToDisk) {
  LfsInstance inst;
  auto data = TestBytes(40000, 4);
  ASSERT_TRUE(inst.paths->WriteFile("/f", data).ok());
  ASSERT_TRUE(inst.fs->Sync().ok());
  ASSERT_TRUE(inst.fs->DropCaches().ok());
  inst.disk->ResetStats();
  auto back = inst.paths->ReadFile("/f");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
  EXPECT_GT(inst.disk->stats().read_ops, 0u);
}

TEST(LfsTest, LargeFileThroughIndirectBlocks) {
  // 4 KB blocks: > 48 KB needs the single indirect, > 2 MB the double.
  LfsInstance inst;
  auto data = TestBytes(3 << 20, 5);
  ASSERT_TRUE(inst.paths->WriteFile("/big", data).ok());
  ASSERT_TRUE(inst.fs->Sync().ok());
  ASSERT_TRUE(inst.fs->DropCaches().ok());
  auto back = inst.paths->ReadFile("/big");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
  EXPECT_TRUE(ExpectClean(inst.fs.get()).ok());
}

TEST(LfsTest, SparseFileReadsZeros) {
  LfsInstance inst;
  auto ino = inst.fs->Create(kRootIno, "sparse", FileType::kRegular);
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(inst.fs->Write(*ino, 500000, TestBytes(100, 6)).ok());
  std::vector<std::byte> hole(4096);
  auto n = inst.fs->Read(*ino, 100000, hole);
  ASSERT_TRUE(n.ok());
  for (std::byte b : hole) {
    EXPECT_EQ(b, std::byte{0});
  }
  ASSERT_TRUE(inst.Remount().ok());
  auto stat = inst.paths->Stat("/sparse");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->size, 500100u);
  EXPECT_TRUE(ExpectClean(inst.fs.get()).ok());
}

TEST(LfsTest, OverwriteSupersedesOldBlocks) {
  LfsInstance inst;
  ASSERT_TRUE(inst.paths->WriteFile("/f", TestBytes(8192, 1)).ok());
  ASSERT_TRUE(inst.fs->Sync().ok());
  const uint64_t live_before = inst.fs->TotalLiveBytes();
  // Overwrite in place (logically): live bytes must not grow.
  auto ino = inst.paths->Resolve("/f");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(inst.fs->Write(*ino, 0, TestBytes(8192, 2)).ok());
  ASSERT_TRUE(inst.fs->Sync().ok());
  EXPECT_EQ(inst.fs->TotalLiveBytes(), live_before);
  auto back = inst.paths->ReadFile("/f");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, TestBytes(8192, 2));
  EXPECT_TRUE(ExpectClean(inst.fs.get()).ok());
}

TEST(LfsTest, TruncateShrinkRegrowAndVersionBump) {
  LfsInstance inst;
  ASSERT_TRUE(inst.paths->WriteFile("/f", TestBytes(30000, 7)).ok());
  auto ino = inst.paths->Resolve("/f");
  ASSERT_TRUE(ino.ok());
  auto stat0 = inst.fs->Stat(*ino);
  ASSERT_TRUE(stat0.ok());
  ASSERT_TRUE(inst.fs->Truncate(*ino, 10000).ok());
  auto stat1 = inst.fs->Stat(*ino);
  ASSERT_TRUE(stat1.ok());
  EXPECT_EQ(stat1->size, 10000u);
  EXPECT_EQ(stat1->version, stat0->version);  // Partial truncate: no bump.
  ASSERT_TRUE(inst.fs->Truncate(*ino, 0).ok());
  auto stat2 = inst.fs->Stat(*ino);
  ASSERT_TRUE(stat2.ok());
  EXPECT_EQ(stat2->size, 0u);
  EXPECT_GT(stat2->version, stat1->version);  // Truncate-to-zero bumps.
  // Regrow reads zeros.
  ASSERT_TRUE(inst.fs->Truncate(*ino, 5000).ok());
  std::vector<std::byte> tail(5000);
  auto n = inst.fs->Read(*ino, 0, tail);
  ASSERT_TRUE(n.ok());
  for (std::byte b : tail) {
    EXPECT_EQ(b, std::byte{0});
  }
  EXPECT_TRUE(ExpectClean(inst.fs.get()).ok());
}

TEST(LfsTest, UnlinkReclaimsLiveBytes) {
  LfsInstance inst;
  ASSERT_TRUE(inst.fs->Sync().ok());
  const uint64_t live_empty = inst.fs->TotalLiveBytes();
  ASSERT_TRUE(inst.paths->WriteFile("/f", TestBytes(1 << 20, 8)).ok());
  ASSERT_TRUE(inst.fs->Sync().ok());
  EXPECT_GT(inst.fs->TotalLiveBytes(), live_empty);
  ASSERT_TRUE(inst.paths->Unlink("/f").ok());
  ASSERT_TRUE(inst.fs->Sync().ok());
  // Within a couple of blocks of the empty state (directory block remains).
  EXPECT_LT(inst.fs->TotalLiveBytes(), live_empty + 3 * 4096);
  EXPECT_TRUE(ExpectClean(inst.fs.get()).ok());
}

TEST(LfsTest, MkdirRmdirNlink) {
  LfsInstance inst;
  ASSERT_TRUE(inst.paths->Mkdir("/d").ok());
  auto root_stat = inst.fs->Stat(kRootIno);
  ASSERT_TRUE(root_stat.ok());
  EXPECT_EQ(root_stat->nlink, 3);
  ASSERT_TRUE(inst.paths->CreateFile("/d/f").ok());
  EXPECT_EQ(inst.paths->Rmdir("/d").code(), ErrorCode::kNotEmpty);
  ASSERT_TRUE(inst.paths->Unlink("/d/f").ok());
  ASSERT_TRUE(inst.paths->Rmdir("/d").ok());
  root_stat = inst.fs->Stat(kRootIno);
  ASSERT_TRUE(root_stat.ok());
  EXPECT_EQ(root_stat->nlink, 2);
  EXPECT_TRUE(ExpectClean(inst.fs.get()).ok());
}

TEST(LfsTest, HardLinksAndRename) {
  LfsInstance inst;
  ASSERT_TRUE(inst.paths->WriteFile("/orig", TestBytes(100, 9)).ok());
  auto ino = inst.paths->Resolve("/orig");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(inst.fs->Link(kRootIno, "alias", *ino).ok());
  auto stat = inst.fs->Stat(*ino);
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->nlink, 2);
  ASSERT_TRUE(inst.paths->Mkdir("/sub").ok());
  ASSERT_TRUE(inst.paths->Rename("/orig", "/sub/moved").ok());
  EXPECT_FALSE(inst.paths->Exists("/orig"));
  EXPECT_TRUE(inst.paths->Exists("/sub/moved"));
  ASSERT_TRUE(inst.paths->Unlink("/alias").ok());
  auto stat2 = inst.paths->Stat("/sub/moved");
  ASSERT_TRUE(stat2.ok());
  EXPECT_EQ(stat2->nlink, 1);
  EXPECT_TRUE(ExpectClean(inst.fs.get()).ok());
}

TEST(LfsTest, RenameDirectoryAcrossParents) {
  LfsInstance inst;
  ASSERT_TRUE(inst.paths->MkdirAll("/src/child").ok());
  ASSERT_TRUE(inst.paths->Mkdir("/dst").ok());
  ASSERT_TRUE(inst.paths->Rename("/src/child", "/dst/child").ok());
  auto parent = inst.paths->Resolve("/dst/child/..");
  ASSERT_TRUE(parent.ok());
  auto dst = inst.paths->Resolve("/dst");
  ASSERT_TRUE(dst.ok());
  EXPECT_EQ(*parent, *dst);
  EXPECT_EQ(inst.paths->Rename("/dst", "/dst/child/x").code(), ErrorCode::kInvalidArgument);
  EXPECT_TRUE(ExpectClean(inst.fs.get()).ok());
}

TEST(LfsTest, FsyncMakesDataDurableWithoutCheckpoint) {
  LfsInstance inst;
  ASSERT_TRUE(inst.paths->WriteFile("/f", TestBytes(10000, 10)).ok());
  auto ino = inst.paths->Resolve("/f");
  ASSERT_TRUE(ino.ok());
  const uint64_t checkpoints_before = inst.fs->checkpoint_count();
  ASSERT_TRUE(inst.fs->Fsync(*ino).ok());
  EXPECT_EQ(inst.fs->checkpoint_count(), checkpoints_before);  // No checkpoint.
}

TEST(LfsTest, ManySmallFilesInManyDirectories) {
  LfsInstance inst;
  for (int d = 0; d < 8; ++d) {
    const std::string dir = "/dir" + std::to_string(d);
    ASSERT_TRUE(inst.paths->Mkdir(dir).ok());
    for (int f = 0; f < 40; ++f) {
      ASSERT_TRUE(
          inst.paths->WriteFile(dir + "/f" + std::to_string(f), TestBytes(1024, d * 100 + f))
              .ok());
    }
  }
  ASSERT_TRUE(inst.Remount().ok());
  for (int d = 0; d < 8; ++d) {
    for (int f = 0; f < 40; ++f) {
      auto back =
          inst.paths->ReadFile("/dir" + std::to_string(d) + "/f" + std::to_string(f));
      ASSERT_TRUE(back.ok());
      ASSERT_EQ(*back, TestBytes(1024, d * 100 + f));
    }
  }
  EXPECT_TRUE(ExpectClean(inst.fs.get()).ok());
}

TEST(LfsTest, AtimeLivesInInodeMap) {
  LfsInstance inst;
  ASSERT_TRUE(inst.paths->WriteFile("/f", TestBytes(100, 11)).ok());
  ASSERT_TRUE(inst.fs->Sync().ok());
  auto ino = inst.paths->Resolve("/f");
  ASSERT_TRUE(ino.ok());
  const DiskAddr inode_home = inst.fs->imap().Get(*ino).block_addr;
  inst.clock->Advance(10.0);
  std::vector<std::byte> buffer(100);
  ASSERT_TRUE(inst.fs->Read(*ino, 0, buffer).ok());
  auto stat = inst.fs->Stat(*ino);
  ASSERT_TRUE(stat.ok());
  EXPECT_GT(stat->atime, stat->mtime);
  ASSERT_TRUE(inst.fs->Sync().ok());
  // The read did not relocate the inode (footnote 2's whole point).
  EXPECT_EQ(inst.fs->imap().Get(*ino).block_addr, inode_home);
}

TEST(LfsTest, SegmentsFillAndAdvance) {
  LfsInstance inst;
  // Write ~4 MB: the log must occupy several segments.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(inst.paths->WriteFile("/big" + std::to_string(i), TestBytes(1 << 20, i)).ok());
    ASSERT_TRUE(inst.fs->Sync().ok());
  }
  uint32_t dirty = inst.fs->usage().CountState(SegState::kDirty);
  EXPECT_GE(dirty, 3u);
  EXPECT_TRUE(ExpectClean(inst.fs.get()).ok());
}

TEST(LfsTest, StatTracksVersionFromImap) {
  LfsInstance inst;
  ASSERT_TRUE(inst.paths->CreateFile("/f").ok());
  auto stat = inst.paths->Stat("/f");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->version, inst.fs->imap().Get(stat->ino).version);
  EXPECT_GT(stat->version, 0u);
}

TEST(LfsTest, OutOfSpaceSurfacesNoSpaceAndStaysUsable) {
  // Small disk: 24 segments.
  LfsParams params = LfsInstance::DefaultParams();
  LfsInstance inst(24 * 2048 + 4096, params);
  Status status = OkStatus();
  int written = 0;
  for (int i = 0; i < 64 && status.ok(); ++i) {
    status = inst.paths->WriteFile("/f" + std::to_string(i), TestBytes(1 << 20, i));
    if (status.ok()) {
      ++written;
    }
  }
  EXPECT_EQ(status.code(), ErrorCode::kNoSpace);
  EXPECT_GT(written, 5);
  // Deleting makes room again (via the cleaner).
  for (int i = 0; i < written; ++i) {
    ASSERT_TRUE(inst.paths->Unlink("/f" + std::to_string(i)).ok());
  }
  EXPECT_TRUE(inst.paths->WriteFile("/again", TestBytes(1 << 20, 99)).ok());
  EXPECT_TRUE(ExpectClean(inst.fs.get()).ok());
}

TEST(LfsTest, ReadAheadCutsDiskRequestsAndPreservesContent) {
  LfsFileSystem::Options options;
  options.read_ahead_blocks = 8;
  LfsInstance with_ra(131072, LfsInstance::DefaultParams(), options);
  LfsInstance without_ra;
  auto data = TestBytes(256 * 1024, 21);  // 64 blocks, written sequentially.
  for (LfsInstance* inst : {&with_ra, &without_ra}) {
    ASSERT_TRUE(inst->paths->WriteFile("/big", data).ok());
    ASSERT_TRUE(inst->fs->Sync().ok());
    ASSERT_TRUE(inst->fs->DropCaches().ok());
    inst->disk->ResetStats();
    auto back = inst->paths->ReadFile("/big");
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(*back, data);
  }
  // One transfer per 9 blocks instead of per block: far fewer requests.
  EXPECT_LT(with_ra.disk->stats().read_ops * 4, without_ra.disk->stats().read_ops);
  // Read-ahead must never fabricate data: spot-check a sparse file too.
  auto ino = with_ra.fs->Create(kRootIno, "sparse", FileType::kRegular);
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(with_ra.fs->Write(*ino, 100000, TestBytes(10, 1)).ok());
  ASSERT_TRUE(with_ra.fs->Sync().ok());
  ASSERT_TRUE(with_ra.fs->DropCaches().ok());
  std::vector<std::byte> hole(4096);
  auto n = with_ra.fs->Read(*ino, 0, hole);
  ASSERT_TRUE(n.ok());
  for (std::byte b : hole) {
    EXPECT_EQ(b, std::byte{0});
  }
}

TEST(LfsTest, ReadAheadDoesNotClobberDirtyCache) {
  LfsFileSystem::Options options;
  options.read_ahead_blocks = 8;
  LfsInstance inst(131072, LfsInstance::DefaultParams(), options);
  auto data = TestBytes(64 * 1024, 5);
  ASSERT_TRUE(inst.paths->WriteFile("/f", data).ok());
  ASSERT_TRUE(inst.fs->Sync().ok());
  ASSERT_TRUE(inst.fs->DropCaches().ok());
  auto ino = inst.paths->Resolve("/f");
  ASSERT_TRUE(ino.ok());
  // Dirty block 3 in the cache, then trigger a read-ahead from block 0.
  auto patch = TestBytes(4096, 99);
  ASSERT_TRUE(inst.fs->Write(*ino, 3 * 4096, patch).ok());
  std::vector<std::byte> buffer(16 * 4096);
  auto n = inst.fs->Read(*ino, 0, buffer);
  ASSERT_TRUE(n.ok());
  // The dirty (new) content must win over the stale on-disk run.
  EXPECT_TRUE(std::equal(patch.begin(), patch.end(), buffer.begin() + 3 * 4096));
}

}  // namespace
}  // namespace logfs
