// Unit tests for the simulation substrate: SimClock and CpuModel.
// (DiskModel is covered in disk_test.cc.)
#include <gtest/gtest.h>

#include "src/sim/cpu_model.h"
#include "src/sim/sim_clock.h"

namespace logfs {
namespace {

TEST(SimClockTest, StartsAtZeroAndAdvances) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.Now(), 0.0);
  clock.Advance(1.5);
  EXPECT_DOUBLE_EQ(clock.Now(), 1.5);
  clock.Advance(0.0);
  EXPECT_DOUBLE_EQ(clock.Now(), 1.5);
  clock.AdvanceTo(10.0);
  EXPECT_DOUBLE_EQ(clock.Now(), 10.0);
}

TEST(CpuModelTest, ChargeConvertsInstructionsToSeconds) {
  SimClock clock;
  CpuModel cpu(&clock, /*mips=*/10.0);
  cpu.Charge(10'000'000);  // 10M instructions at 10 MIPS = 1 second.
  EXPECT_DOUBLE_EQ(clock.Now(), 1.0);
  cpu.set_mips(20.0);
  cpu.Charge(10'000'000);
  EXPECT_DOUBLE_EQ(clock.Now(), 1.5);
}

TEST(CpuModelTest, TrackedChargesAccumulate) {
  SimClock clock;
  CpuModel cpu(&clock, 1.0);
  cpu.ChargeTracked(100);
  cpu.ChargeTracked(200);
  EXPECT_EQ(cpu.total_instructions(), 300u);
  cpu.Charge(500);  // Untracked.
  EXPECT_EQ(cpu.total_instructions(), 300u);
}

TEST(CpuModelTest, FasterCpuMeansLessTime) {
  SimClock slow_clock;
  SimClock fast_clock;
  CpuModel slow(&slow_clock, 0.9);
  CpuModel fast(&fast_clock, 14.0);
  slow.Charge(1'000'000);
  fast.Charge(1'000'000);
  // The Section 3.1 ratio: 14 MIPS runs the same path ~15.6x faster.
  EXPECT_NEAR(slow_clock.Now() / fast_clock.Now(), 14.0 / 0.9, 1e-9);
}

TEST(CpuModelTest, DefaultCostsAreSane) {
  CpuCosts costs;
  // Creates cost more than lookups; per-block work is cheaper than both.
  EXPECT_GT(costs.create_instructions, costs.lookup_instructions);
  EXPECT_GT(costs.remove_instructions, costs.per_block_instructions);
  EXPECT_GT(costs.per_block_instructions, costs.per_kilobyte_copy_instructions);
}

}  // namespace
}  // namespace logfs
