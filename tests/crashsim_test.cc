// Tests for the crash-state exploration subsystem (src/crashsim/):
// RecordingDisk journaling and flush epochs, CrashImageGenerator
// enumeration and materialization, and the full explorer sweep — including
// the self-test that deliberately weakens roll-forward's summary-CRC check
// and expects the Oracle to notice.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/crashsim/crash_image.h"
#include "src/crashsim/explorer.h"
#include "src/crashsim/oracle.h"
#include "src/crashsim/recording_disk.h"
#include "src/disk/memory_disk.h"
#include "src/fsbase/path.h"
#include "src/lfs/lfs_blackbox.h"
#include "src/obs/metrics.h"
#include "src/workload/trace.h"
#include "tests/fs_fixture.h"

namespace logfs {
namespace {

std::vector<std::byte> Sectors(size_t n, uint8_t seed) {
  std::vector<std::byte> data(n * kSectorSize);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(seed + i);
  }
  return data;
}

// --- RecordingDisk ---------------------------------------------------------

TEST(RecordingDiskTest, JournalsWritesInOrderAndForwards) {
  MemoryDisk inner(256, /*clock=*/nullptr);
  RecordingDisk disk(&inner);
  auto a = Sectors(2, 1);
  auto b = Sectors(1, 9);
  ASSERT_TRUE(disk.WriteSectors(0, a).ok());
  ASSERT_TRUE(disk.WriteSectors(16, b).ok());
  ASSERT_EQ(disk.write_count(), 2u);
  EXPECT_EQ(disk.sectors_recorded(), 3u);
  EXPECT_EQ(disk.writes()[0].first, 0u);
  EXPECT_EQ(disk.writes()[0].data, a);
  EXPECT_EQ(disk.writes()[1].first, 16u);
  EXPECT_EQ(disk.writes()[1].data, b);
  // Writes reached the inner device too.
  std::vector<std::byte> out(kSectorSize);
  ASSERT_TRUE(disk.ReadSectors(16, out).ok());
  EXPECT_EQ(out, b);
}

TEST(RecordingDiskTest, FlushClosesAnEpoch) {
  MemoryDisk inner(256, /*clock=*/nullptr);
  RecordingDisk disk(&inner);
  ASSERT_TRUE(disk.WriteSectors(0, Sectors(1, 1)).ok());
  ASSERT_TRUE(disk.WriteSectors(1, Sectors(1, 2)).ok());
  ASSERT_TRUE(disk.Flush().ok());
  ASSERT_TRUE(disk.WriteSectors(2, Sectors(1, 3)).ok());
  ASSERT_EQ(disk.write_count(), 3u);
  EXPECT_EQ(disk.writes()[0].epoch, disk.writes()[1].epoch);
  EXPECT_NE(disk.writes()[1].epoch, disk.writes()[2].epoch);
}

TEST(RecordingDiskTest, SynchronousWriteIsItsOwnEpoch) {
  MemoryDisk inner(256, /*clock=*/nullptr);
  RecordingDisk disk(&inner);
  ASSERT_TRUE(disk.WriteSectors(0, Sectors(1, 1)).ok());
  ASSERT_TRUE(disk.WriteSectors(1, Sectors(1, 2), IoOptions{.synchronous = true}).ok());
  ASSERT_TRUE(disk.WriteSectors(2, Sectors(1, 3)).ok());
  ASSERT_EQ(disk.write_count(), 3u);
  EXPECT_NE(disk.writes()[0].epoch, disk.writes()[1].epoch);
  EXPECT_NE(disk.writes()[1].epoch, disk.writes()[2].epoch);
  EXPECT_TRUE(disk.writes()[1].synchronous);
}

// --- CrashImageGenerator ---------------------------------------------------

struct GeneratorRig {
  GeneratorRig() : inner(64, nullptr), rec(&inner) {
    std::span<const std::byte> raw = inner.RawImage();
    base.assign(raw.begin(), raw.end());
  }
  MemoryDisk inner;
  RecordingDisk rec;
  std::vector<std::byte> base;
};

TEST(CrashImageGeneratorTest, EnumeratesPrefixAndTornVariants) {
  GeneratorRig rig;
  ASSERT_TRUE(rig.rec.WriteSectors(0, Sectors(4, 1)).ok());
  ASSERT_TRUE(rig.rec.WriteSectors(8, Sectors(1, 2)).ok());
  CrashImageGenerator gen(rig.base, &rig.rec.writes());

  CrashEnumerationBudget budget;
  budget.torn_variants = {1, 2, 8};
  std::vector<CrashPlan> plans = gen.Enumerate(budget);
  // Boundaries 0,1,2; torn 1 and 2 apply only at boundary 0 (4-sector
  // write); the 1-sector write at boundary 1 is too small to tear.
  ASSERT_EQ(plans.size(), 5u);
  size_t torn = 0;
  for (const CrashPlan& plan : plans) {
    if (plan.torn_sectors > 0) {
      ++torn;
      EXPECT_EQ(plan.prefix, 0u);
      EXPECT_LT(plan.torn_sectors, 4u);
    }
  }
  EXPECT_EQ(torn, 2u);
}

TEST(CrashImageGeneratorTest, MaterializePrefixAndTorn) {
  GeneratorRig rig;
  auto a = Sectors(2, 1);
  auto b = Sectors(2, 9);
  ASSERT_TRUE(rig.rec.WriteSectors(0, a).ok());
  ASSERT_TRUE(rig.rec.WriteSectors(4, b).ok());
  CrashImageGenerator gen(rig.base, &rig.rec.writes());

  // Prefix 1: only write 0 landed.
  auto image = gen.Materialize(CrashPlan{1, 0});
  ASSERT_TRUE(image.ok());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), image->begin()));
  EXPECT_TRUE(std::all_of(image->begin() + 4 * kSectorSize,
                          image->begin() + 6 * kSectorSize,
                          [](std::byte x) { return x == std::byte{0}; }));

  // Prefix 1 torn 1: write 0 landed plus the first sector of write 1.
  image = gen.Materialize(CrashPlan{1, 1});
  ASSERT_TRUE(image.ok());
  EXPECT_TRUE(std::equal(b.begin(), b.begin() + kSectorSize,
                         image->begin() + 4 * kSectorSize));
  EXPECT_TRUE(std::all_of(image->begin() + 5 * kSectorSize,
                          image->begin() + 6 * kSectorSize,
                          [](std::byte x) { return x == std::byte{0}; }));
}

TEST(CrashImageGeneratorTest, ReorderDropsStayInsideEpochAndBarriers) {
  GeneratorRig rig;
  ASSERT_TRUE(rig.rec.WriteSectors(0, Sectors(1, 1)).ok());
  ASSERT_TRUE(rig.rec.WriteSectors(1, Sectors(1, 2)).ok());
  ASSERT_TRUE(rig.rec.Flush().ok());  // Epoch boundary after write 1.
  ASSERT_TRUE(rig.rec.WriteSectors(2, Sectors(1, 3)).ok());
  ASSERT_TRUE(rig.rec.WriteSectors(3, Sectors(1, 4)).ok());
  CrashImageGenerator gen(rig.base, &rig.rec.writes());

  CrashEnumerationBudget budget;
  budget.torn_variants = {};
  budget.reorder_within_epoch = true;
  std::vector<CrashPlan> plans = gen.Enumerate(budget);
  // Drops must not cross the flush: at boundary 4 only write 2 may drop
  // (write 3 is the in-order tail, writes 0/1 are a closed epoch).
  for (const CrashPlan& plan : plans) {
    if (plan.dropped == CrashPlan::kNoDrop) {
      continue;
    }
    const uint64_t open_epoch = rig.rec.writes()[plan.prefix - 1].epoch;
    EXPECT_EQ(rig.rec.writes()[plan.dropped].epoch, open_epoch)
        << plan.Describe();
  }
  const bool dropped_two = std::any_of(plans.begin(), plans.end(), [](const CrashPlan& p) {
    return p.prefix == 4 && p.dropped == 2;
  });
  EXPECT_TRUE(dropped_two);

  // With a completed barrier between writes 2 and 4, that drop disappears.
  std::vector<CrashPlan> gated = gen.Enumerate(budget, /*barrier_positions=*/{3});
  for (const CrashPlan& plan : gated) {
    EXPECT_FALSE(plan.prefix == 4 && plan.dropped == 2) << plan.Describe();
  }

  // Dropped images simply omit the write.
  auto image = gen.Materialize(CrashPlan{4, 0, 2});
  ASSERT_TRUE(image.ok());
  EXPECT_TRUE(std::all_of(image->begin() + 2 * kSectorSize,
                          image->begin() + 3 * kSectorSize,
                          [](std::byte x) { return x == std::byte{0}; }));
  EXPECT_EQ((*image)[3 * kSectorSize], static_cast<std::byte>(4));
}

// --- Explorer sweeps -------------------------------------------------------

// The acceptance sweep: a mixed create/write/fsync/unlink/sync/clean
// workload, a few hundred crash states, both mount modes — and zero
// violations of the durability contract.
TEST(CrashExplorerTest, MixedWorkloadSurvivesEnumeratedCrashes) {
  std::vector<TraceOp> workload = GenerateCrashTrace(40, /*seed=*/1234);
  ExploreBudget budget;
  budget.max_boundaries = 120;
  auto report = ExploreCrashStates(workload, budget);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->states_checked, 200u);
  EXPECT_GT(report->journal_writes, 0u);
  std::string failures;
  for (const CrashStateResult& result : report->results) {
    for (const std::string& violation : result.verdict.violations) {
      failures += result.plan.Describe() +
                  (result.roll_forward ? " [rf] " : " [cp] ") + violation + "\n";
    }
  }
  EXPECT_EQ(report->failed_states, 0u) << failures;
}

// Reordering within a flush epoch must also be survivable: LFS only relies
// on ordering across its synchronous checkpoint-region writes.
TEST(CrashExplorerTest, ReorderedEpochsSurvive) {
  std::vector<TraceOp> workload = GenerateCrashTrace(12, /*seed=*/77);
  ExploreBudget budget;
  budget.max_boundaries = 40;
  budget.torn_variants = {};
  budget.reorder_within_epoch = true;
  auto report = ExploreCrashStates(workload, budget);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  std::string failures;
  for (const CrashStateResult& result : report->results) {
    for (const std::string& violation : result.verdict.violations) {
      failures += result.plan.Describe() + " " + violation + "\n";
    }
  }
  EXPECT_EQ(report->failed_states, 0u) << failures;
}

// The flight recorder's acceptance sweep: from EVERY enumerated crash image
// of a mixed workload — prefix cuts, torn multi-sector writes, crashes
// mid-checkpoint — `lfs_inspect blackbox`'s recovery path must dig out a
// CRC-valid telemetry ring. The argument it validates: the two checkpoint
// regions alternate with at most one write in flight, Format seeds region A
// with an empty ring, and every complete region write since carries a
// trailer — so one region always holds a valid black box.
TEST(CrashExplorerTest, BlackBoxRecoversFromEveryCrashImage) {
  if (!obs::kMetricsEnabled) {
    GTEST_SKIP() << "metrics compiled out: no black box is embedded";
  }
  SimClock clock;
  MemoryDisk disk(49152, &clock);  // 24 MB, the explorer's rig geometry.
  LfsParams params;
  params.max_inodes = 2048;
  params.clean_start_segments = 4;
  params.clean_stop_segments = 6;
  params.reserved_segments = 3;
  ASSERT_TRUE(LfsFileSystem::Format(&disk, params).ok());
  std::span<const std::byte> raw = disk.RawImage();
  std::vector<std::byte> base(raw.begin(), raw.end());

  RecordingDisk rec(&disk);
  LfsFileSystem::Options options;
  options.telemetry_interval_seconds = 0.001;  // Sample eagerly.
  auto mounted = LfsFileSystem::Mount(&rec, &clock, /*cpu=*/nullptr, options);
  ASSERT_TRUE(mounted.ok()) << mounted.status().ToString();
  {
    LfsFileSystem& fs = **mounted;
    PathFs paths(&fs);
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(paths.WriteFile("/f" + std::to_string(i), TestBytes(8192, i)).ok());
      ASSERT_TRUE(fs.Tick().ok());
    }
    ASSERT_TRUE(fs.Sync().ok());
    for (int i = 0; i < 30; i += 2) {
      ASSERT_TRUE(paths.WriteFile("/f" + std::to_string(i), TestBytes(4096, 100 + i)).ok());
    }
    ASSERT_TRUE(fs.Sync().ok());  // Mid-workload checkpoint churn.
    for (int i = 1; i < 30; i += 2) {
      ASSERT_TRUE(paths.Unlink("/f" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(fs.Sync().ok());  // Second checkpoint: both regions now hot.
  }
  ASSERT_GT(rec.write_count(), 0u);

  CrashImageGenerator gen(base, &rec.writes());
  CrashEnumerationBudget budget;
  budget.max_boundaries = 100;
  budget.torn_variants = {1, 4, 8, 12};
  std::vector<CrashPlan> plans = gen.Enumerate(budget);
  ASSERT_GT(plans.size(), 30u);  // A real sweep, not a couple of hand-picked points.

  size_t with_samples = 0;
  for (const CrashPlan& plan : plans) {
    auto image = gen.Materialize(plan);
    ASSERT_TRUE(image.ok()) << plan.Describe();
    auto blackbox = RecoverBlackBoxFromImage(*image);
    ASSERT_TRUE(blackbox.ok())
        << plan.Describe() << ": " << blackbox.status().ToString();
    with_samples += blackbox->ring.samples.empty() ? 0 : 1;
  }
  // Once the first post-mount checkpoint has fully landed, recovered rings
  // carry real samples; only the earliest crash states may see the empty
  // seed ring. The sweep must include plenty of the former.
  EXPECT_GT(with_samples, plans.size() / 2);
}

// Self-test: if recovery is deliberately broken — roll-forward accepting a
// summary block whose segment content never landed (summary CRC skipped) —
// the Oracle must catch it. This is the explorer auditing itself: a sweep
// that cannot detect an injected bug would be worthless.
TEST(CrashExplorerTest, DetectsDeliberatelyBrokenRollForward) {
  std::vector<TraceOp> workload = GenerateCrashTrace(30, /*seed=*/4321);
  ExploreBudget budget;
  budget.max_boundaries = 150;
  budget.torn_variants = {8};  // Exactly one 4 KB block: the summary alone.
  budget.check_checkpoint_only = false;  // Only roll-forward uses summaries.
  ExploreRigParams rig;
  rig.mount_options.unsafe_skip_rollforward_crc = true;
  auto report = ExploreCrashStates(workload, budget, rig);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->failed_states, 0u)
      << "Oracle failed to notice CRC-less roll-forward on "
      << report->states_checked << " states";
}

}  // namespace
}  // namespace logfs
