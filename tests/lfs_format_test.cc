// Unit tests for LFS on-disk codecs: superblock, checkpoint region, segment
// summaries, packed inode blocks, meta-log blocks, inode map and segment
// usage serialization.
#include <gtest/gtest.h>

#include <vector>

#include "src/lfs/lfs_blocks.h"
#include "src/lfs/lfs_format.h"
#include "src/lfs/lfs_inode_map.h"
#include "src/lfs/lfs_seg_usage.h"
#include "src/lfs/lfs_segment.h"

namespace logfs {
namespace {

constexpr uint32_t kBs = 4096;

TEST(LfsGeometryTest, ComputesSegmentsAndCheckpointRegions) {
  LfsParams params;
  auto sb = ComputeLfsGeometry(params, 300 * 2048);  // ~300 MB.
  ASSERT_TRUE(sb.ok());
  EXPECT_EQ(sb->block_size, 4096u);
  EXPECT_EQ(sb->segment_size, 1u << 20);
  EXPECT_GT(sb->num_segments, 250u);
  EXPECT_GT(sb->checkpoint_region_blocks, 0u);
  // Segment area starts after superblock + 2 checkpoint regions.
  EXPECT_EQ(sb->first_segment_sector,
            (1 + 2ull * sb->checkpoint_region_blocks) * sb->SectorsPerBlock());
  // Address mapping round-trips.
  const uint64_t sector = sb->SegmentBlockSector(7, 13);
  EXPECT_EQ(sb->SegmentOfSector(sector), 7u);
}

TEST(LfsGeometryTest, RejectsTinyDevice) {
  EXPECT_FALSE(ComputeLfsGeometry(LfsParams{}, 2048).ok());
}

TEST(LfsGeometryTest, RejectsBadParams) {
  LfsParams params;
  params.block_size = 1000;
  EXPECT_FALSE(ComputeLfsGeometry(params, 1 << 20).ok());
  params = LfsParams{};
  params.segment_size = 4096;  // Only 1 block per segment.
  EXPECT_FALSE(ComputeLfsGeometry(params, 1 << 20).ok());
}

TEST(LfsSuperblockCodecTest, RoundTrip) {
  auto sb = ComputeLfsGeometry(LfsParams{}, 300 * 2048);
  ASSERT_TRUE(sb.ok());
  std::vector<std::byte> block(kBs);
  ASSERT_TRUE(EncodeLfsSuperblock(*sb, block).ok());
  auto back = DecodeLfsSuperblock(block);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_segments, sb->num_segments);
  EXPECT_EQ(back->first_segment_sector, sb->first_segment_sector);
  EXPECT_EQ(back->checkpoint_region_blocks, sb->checkpoint_region_blocks);
}

TEST(LfsSuperblockCodecTest, CorruptionDetected) {
  auto sb = ComputeLfsGeometry(LfsParams{}, 300 * 2048);
  ASSERT_TRUE(sb.ok());
  std::vector<std::byte> block(kBs);
  ASSERT_TRUE(EncodeLfsSuperblock(*sb, block).ok());
  block[10] ^= std::byte{0xFF};
  EXPECT_FALSE(DecodeLfsSuperblock(block).ok());
}

TEST(CheckpointCodecTest, RoundTrip) {
  CheckpointRecord ckpt;
  ckpt.sequence = 42;
  ckpt.timestamp = 123.5;
  ckpt.next_log_seq = 99;
  ckpt.tail_segment = 7;
  ckpt.tail_offset = 200;
  ckpt.next_ino_hint = 55;
  ckpt.total_live_bytes = 1 << 20;
  ckpt.imap_block_addrs = {kNoAddr, 4096, 8192};
  ckpt.usage_block_addrs = {12288};
  std::vector<std::byte> region(8192);
  ASSERT_TRUE(EncodeCheckpoint(ckpt, region).ok());
  auto back = DecodeCheckpoint(region);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->sequence, 42u);
  EXPECT_EQ(back->tail_segment, 7u);
  EXPECT_EQ(back->tail_offset, 200u);
  EXPECT_EQ(back->imap_block_addrs, ckpt.imap_block_addrs);
  EXPECT_EQ(back->usage_block_addrs, ckpt.usage_block_addrs);
}

TEST(CheckpointCodecTest, TornRegionRejected) {
  CheckpointRecord ckpt;
  ckpt.sequence = 1;
  ckpt.imap_block_addrs.assign(100, kNoAddr);
  std::vector<std::byte> region(8192);
  ASSERT_TRUE(EncodeCheckpoint(ckpt, region).ok());
  region[100] ^= std::byte{1};
  EXPECT_FALSE(DecodeCheckpoint(region).ok());
  std::vector<std::byte> zeros(8192, std::byte{0});
  EXPECT_FALSE(DecodeCheckpoint(zeros).ok());
}

TEST(SummaryCodecTest, RoundTripWithContentCrc) {
  SegmentSummary summary;
  summary.seq = 17;
  summary.timestamp = 2.25;
  summary.entries = {
      {BlockKind::kData, 5, 1, 0},
      {BlockKind::kData, 5, 1, 1},
      {BlockKind::kInodeBlock, 0, 0, 0},
  };
  std::vector<std::byte> content(3 * kBs, std::byte{0x5A});
  std::vector<std::byte> block(kBs);
  ASSERT_TRUE(EncodeSummary(summary, block, content).ok());

  auto peek = PeekSummary(block, kBs);
  ASSERT_TRUE(peek.ok());
  EXPECT_EQ(peek->seq, 17u);
  EXPECT_EQ(peek->nblocks, 3u);

  auto back = DecodeSummary(block, content);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->seq, 17u);
  ASSERT_EQ(back->entries.size(), 3u);
  EXPECT_EQ(back->entries[0].kind, BlockKind::kData);
  EXPECT_EQ(back->entries[2].kind, BlockKind::kInodeBlock);
  EXPECT_EQ(back->entries[1].offset, 1);
}

TEST(SummaryCodecTest, TornContentDetected) {
  // The CRC covers the content blocks: flipping a content byte (a torn
  // write) must invalidate the whole partial segment.
  SegmentSummary summary;
  summary.seq = 1;
  summary.entries = {{BlockKind::kData, 1, 1, 0}};
  std::vector<std::byte> content(kBs, std::byte{0});
  std::vector<std::byte> block(kBs);
  ASSERT_TRUE(EncodeSummary(summary, block, content).ok());
  content[kBs - 1] = std::byte{0xFF};
  EXPECT_FALSE(DecodeSummary(block, content).ok());
}

TEST(SummaryCodecTest, CapacityMatchesFormat) {
  const size_t capacity = SummaryCapacity(kBs);
  EXPECT_GT(capacity, 100u);
  SegmentSummary summary;
  summary.entries.assign(capacity + 1, SummaryEntry{});
  std::vector<std::byte> block(kBs);
  EXPECT_FALSE(EncodeSummary(summary, block, {}).ok());
}

TEST(InodeBlockCodecTest, RoundTrip) {
  const size_t capacity = InodesPerLfsBlock(kBs);
  EXPECT_GE(capacity, 10u);
  std::vector<PackedInode> inodes(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    inodes[i].ino = static_cast<InodeNum>(i + 10);
    inodes[i].version = static_cast<uint32_t>(i * 3 + 1);
    inodes[i].inode.type = FileType::kRegular;
    inodes[i].inode.size = i * 1000;
    inodes[i].inode.nlink = 1;
  }
  std::vector<std::byte> block(kBs);
  ASSERT_TRUE(EncodeInodeBlock(inodes, block).ok());
  auto back = DecodeInodeBlock(block);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), capacity);
  for (size_t i = 0; i < capacity; ++i) {
    EXPECT_EQ((*back)[i].ino, inodes[i].ino);
    EXPECT_EQ((*back)[i].version, inodes[i].version);
    EXPECT_EQ((*back)[i].inode.size, inodes[i].inode.size);
  }
}

TEST(InodeBlockCodecTest, RejectsGarbageAndOverflow) {
  std::vector<std::byte> block(kBs, std::byte{0});
  EXPECT_FALSE(DecodeInodeBlock(block).ok());
  std::vector<PackedInode> too_many(InodesPerLfsBlock(kBs) + 1);
  EXPECT_FALSE(EncodeInodeBlock(too_many, block).ok());
  EXPECT_FALSE(EncodeInodeBlock({}, block).ok());
}

TEST(MetaLogCodecTest, RoundTrip) {
  std::vector<FreeRecord> records = {{5, 2}, {9, 7}, {100, 1}};
  std::vector<std::byte> block(kBs);
  ASSERT_TRUE(EncodeMetaLogBlock(records, block).ok());
  auto back = DecodeMetaLogBlock(block);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 3u);
  EXPECT_EQ((*back)[1].ino, 9u);
  EXPECT_EQ((*back)[1].new_version, 7u);
}

TEST(InodeMapTest, AllocateFreeVersioning) {
  InodeMap imap(64, kBs);
  auto a = imap.Allocate(kRootIno);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, kRootIno);
  EXPECT_TRUE(imap.Get(*a).allocated);
  const uint32_t v1 = imap.Get(*a).version;
  imap.Free(*a);
  EXPECT_FALSE(imap.Get(*a).allocated);
  EXPECT_GT(imap.Get(*a).version, v1);
  // Reallocation bumps again (old blocks must read as dead).
  auto b = imap.Allocate(kRootIno);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, *a);
  EXPECT_GT(imap.Get(*b).version, v1 + 1);
}

TEST(InodeMapTest, AllocationHintAndExhaustion) {
  InodeMap imap(16, kBs);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(imap.Allocate(8).ok());
  }
  EXPECT_EQ(imap.allocated_count(), 16u);
  EXPECT_EQ(imap.Allocate(1).status().code(), ErrorCode::kNoSpace);
}

TEST(InodeMapTest, BlockSerializationRoundTrip) {
  InodeMap imap(400, kBs);
  ASSERT_TRUE(imap.Allocate(kRootIno).ok());
  imap.SetLocation(kRootIno, 8192, 3);
  imap.SetAtime(kRootIno, 7.5);
  EXPECT_TRUE(imap.BlockDirty(0));
  std::vector<std::byte> block(kBs);
  ASSERT_TRUE(imap.EncodeBlock(0, block).ok());

  InodeMap other(400, kBs);
  ASSERT_TRUE(other.DecodeBlock(0, block).ok());
  EXPECT_TRUE(other.Get(kRootIno).allocated);
  EXPECT_EQ(other.Get(kRootIno).block_addr, 8192u);
  EXPECT_EQ(other.Get(kRootIno).slot, 3);
  EXPECT_DOUBLE_EQ(other.Get(kRootIno).atime, 7.5);
  EXPECT_EQ(other.allocated_count(), 1u);
  EXPECT_FALSE(other.BlockDirty(0));
}

TEST(SegUsageTest, LiveAccountingAndStates) {
  SegmentUsageTable usage(16, kBs);
  EXPECT_EQ(usage.CountState(SegState::kClean), 16u);
  usage.AddLive(3, 8192);
  usage.SetState(3, SegState::kDirty);
  usage.AddLive(3, -4096);
  EXPECT_EQ(usage.Get(3).live_bytes, 4096u);
  EXPECT_EQ(usage.TotalLiveBytes(), 4096u);
  auto clean = usage.PickClean();
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(*clean, 0u);
}

TEST(SegUsageTest, VictimSelectionIsGreedy) {
  SegmentUsageTable usage(8, kBs);
  usage.SetState(1, SegState::kDirty);
  usage.SetLive(1, 100);
  usage.SetState(2, SegState::kDirty);
  usage.SetLive(2, 50);
  usage.SetState(3, SegState::kDirty);
  usage.SetLive(3, 200);
  usage.SetState(4, SegState::kActive);
  usage.SetLive(4, 10);  // Active: never a victim.
  auto victims = usage.PickVictims(2, 1000);
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_EQ(victims[0], 2u);
  EXPECT_EQ(victims[1], 1u);
  // The live-byte ceiling filters out nearly-full segments.
  victims = usage.PickVictims(10, 100);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 2u);
}

TEST(SegUsageTest, PendingCleanCommit) {
  SegmentUsageTable usage(4, kBs);
  usage.SetState(1, SegState::kCleanPending);
  usage.SetLive(1, 0);  // Fully relocated by the cleaner.
  EXPECT_EQ(usage.PickVictims(4, 1 << 20).size(), 0u);  // Pending not a victim.
  EXPECT_TRUE(usage.CommitPendingClean().empty());
  EXPECT_EQ(usage.Get(1).state, SegState::kClean);
  EXPECT_EQ(usage.Get(1).live_bytes, 0u);
}

TEST(SegUsageTest, PendingCleanWithResidueIsQuarantined) {
  // A pending segment still holding live bytes at commit time means the
  // cleaner could not relocate everything (media damage): it must never
  // return to the allocatable pool, and its live bytes stay charged.
  SegmentUsageTable usage(4, kBs);
  usage.SetState(1, SegState::kCleanPending);
  usage.SetLive(1, 123);
  const std::vector<uint32_t> quarantined = usage.CommitPendingClean();
  ASSERT_EQ(quarantined.size(), 1u);
  EXPECT_EQ(quarantined[0], 1u);
  EXPECT_EQ(usage.Get(1).state, SegState::kQuarantined);
  EXPECT_EQ(usage.Get(1).live_bytes, 123u);
  EXPECT_TRUE(usage.PickClean().status().code() == ErrorCode::kNotFound ||
              usage.PickClean().value() != 1u);  // Never allocatable.
  EXPECT_TRUE(usage.PickVictims(4, 1 << 20).empty());  // Never a victim.
}

TEST(SegUsageTest, SerializationRoundTripMapsStates) {
  SegmentUsageTable usage(8, kBs);
  usage.SetState(0, SegState::kActive);
  usage.SetLive(0, 4096);
  usage.SetState(1, SegState::kDirty);
  usage.SetLive(1, 999);
  usage.SetState(2, SegState::kCleanPending);
  usage.SetWriteSeq(1, 77);
  std::vector<std::byte> block(kBs);
  ASSERT_TRUE(usage.EncodeBlock(0, block).ok());
  SegmentUsageTable other(8, kBs);
  ASSERT_TRUE(other.DecodeBlock(0, block).ok());
  // kActive persists as kDirty; kCleanPending reloads as kClean.
  EXPECT_EQ(other.Get(0).state, SegState::kDirty);
  EXPECT_EQ(other.Get(1).state, SegState::kDirty);
  EXPECT_EQ(other.Get(1).live_bytes, 999u);
  EXPECT_EQ(other.Get(1).last_write_seq, 77u);
  EXPECT_EQ(other.Get(2).state, SegState::kClean);
}

}  // namespace
}  // namespace logfs
