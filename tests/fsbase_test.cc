// Unit tests for the shared file-system layer: inode codec, block-map
// geometry, directory block format, path utilities.
#include <gtest/gtest.h>

#include <vector>

#include "src/fsbase/dirent.h"
#include "src/fsbase/inode.h"
#include "src/fsbase/path.h"

namespace logfs {
namespace {

TEST(InodeCodecTest, RoundTrip) {
  Inode inode;
  inode.type = FileType::kRegular;
  inode.mode = 0755;
  inode.nlink = 3;
  inode.uid = 100;
  inode.gid = 200;
  inode.size = 123456789;
  inode.atime = 1.25;
  inode.mtime = 2.5;
  inode.ctime = 3.75;
  inode.generation = 42;
  for (size_t i = 0; i < kNumDirect; ++i) {
    inode.direct[i] = i * 1000 + 1;
  }
  inode.single_indirect = 777777;
  inode.double_indirect = kNoAddr;

  std::vector<std::byte> slot(kInodeDiskSize);
  ASSERT_TRUE(EncodeInode(inode, slot).ok());
  auto decoded = DecodeInode(slot);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, FileType::kRegular);
  EXPECT_EQ(decoded->mode, 0755);
  EXPECT_EQ(decoded->nlink, 3);
  EXPECT_EQ(decoded->uid, 100u);
  EXPECT_EQ(decoded->gid, 200u);
  EXPECT_EQ(decoded->size, 123456789u);
  EXPECT_DOUBLE_EQ(decoded->atime, 1.25);
  EXPECT_DOUBLE_EQ(decoded->mtime, 2.5);
  EXPECT_DOUBLE_EQ(decoded->ctime, 3.75);
  EXPECT_EQ(decoded->generation, 42u);
  EXPECT_EQ(decoded->direct, inode.direct);
  EXPECT_EQ(decoded->single_indirect, 777777u);
  EXPECT_EQ(decoded->double_indirect, kNoAddr);
}

TEST(InodeCodecTest, RejectsGarbage) {
  std::vector<std::byte> slot(kInodeDiskSize, std::byte{0});
  EXPECT_FALSE(DecodeInode(slot).ok());
  slot.assign(kInodeDiskSize, std::byte{0xFF});
  EXPECT_FALSE(DecodeInode(slot).ok());
  std::vector<std::byte> small(10);
  EXPECT_FALSE(DecodeInode(small).ok());
}

TEST(BlockMapTest, DirectRange) {
  for (uint64_t i = 0; i < kNumDirect; ++i) {
    auto loc = ResolveBlockIndex(i, 512);
    ASSERT_TRUE(loc.ok());
    EXPECT_EQ(loc->level, BlockLocation::Level::kDirect);
    EXPECT_EQ(loc->direct_index, i);
  }
}

TEST(BlockMapTest, SingleIndirectRange) {
  auto loc = ResolveBlockIndex(kNumDirect, 512);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->level, BlockLocation::Level::kSingleIndirect);
  EXPECT_EQ(loc->l1_index, 0u);
  loc = ResolveBlockIndex(kNumDirect + 511, 512);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->level, BlockLocation::Level::kSingleIndirect);
  EXPECT_EQ(loc->l1_index, 511u);
}

TEST(BlockMapTest, DoubleIndirectRange) {
  const uint64_t base = kNumDirect + 512;
  auto loc = ResolveBlockIndex(base, 512);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->level, BlockLocation::Level::kDoubleIndirect);
  EXPECT_EQ(loc->l1_index, 0u);
  EXPECT_EQ(loc->l2_index, 0u);
  loc = ResolveBlockIndex(base + 512 * 300 + 77, 512);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->l1_index, 300u);
  EXPECT_EQ(loc->l2_index, 77u);
}

TEST(BlockMapTest, BeyondDoubleIndirectFails) {
  const uint64_t max = MaxFileBlocks(512);
  EXPECT_TRUE(ResolveBlockIndex(max - 1, 512).ok());
  EXPECT_EQ(ResolveBlockIndex(max, 512).status().code(), ErrorCode::kTooLarge);
}

TEST(BlockMapTest, MaxFileBlocksFormula) {
  EXPECT_EQ(MaxFileBlocks(512), kNumDirect + 512 + 512 * 512);
}

TEST(IndirectEntryTest, ZeroEncodesHole) {
  std::vector<std::byte> block(4096, std::byte{0});
  EXPECT_EQ(ReadIndirectEntry(block, 0), kNoAddr);
  WriteIndirectEntry(block, 3, 12345);
  EXPECT_EQ(ReadIndirectEntry(block, 3), 12345u);
  WriteIndirectEntry(block, 3, kNoAddr);
  EXPECT_EQ(ReadIndirectEntry(block, 3), kNoAddr);
}

class DirBlockTest : public ::testing::Test {
 protected:
  void SetUp() override {
    block_.assign(1024, std::byte{0xCD});
    view_ = std::make_unique<DirBlockView>(std::span<std::byte>(block_));
    ASSERT_TRUE(view_->InitEmpty().ok());
  }
  std::vector<std::byte> block_;
  std::unique_ptr<DirBlockView> view_;
};

TEST_F(DirBlockTest, EmptyAfterInit) {
  ASSERT_TRUE(view_->Validate().ok());
  auto empty = view_->Empty();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(*empty);
  EXPECT_EQ(view_->Find("anything").status().code(), ErrorCode::kNotFound);
}

TEST_F(DirBlockTest, InsertAndFind) {
  ASSERT_TRUE(view_->Insert(10, FileType::kRegular, "hello.txt").ok());
  auto entry = view_->Find("hello.txt");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->ino, 10u);
  EXPECT_EQ(entry->type, FileType::kRegular);
  EXPECT_EQ(entry->name, "hello.txt");
}

TEST_F(DirBlockTest, DuplicateInsertRejected) {
  ASSERT_TRUE(view_->Insert(10, FileType::kRegular, "a").ok());
  EXPECT_EQ(view_->Insert(11, FileType::kRegular, "a").code(), ErrorCode::kExists);
}

TEST_F(DirBlockTest, EmptyAndOverlongNamesRejected) {
  EXPECT_EQ(view_->Insert(1, FileType::kRegular, "").code(), ErrorCode::kInvalidArgument);
  std::string long_name(kMaxNameLen + 1, 'x');
  EXPECT_EQ(view_->Insert(1, FileType::kRegular, long_name).code(), ErrorCode::kNameTooLong);
}

TEST_F(DirBlockTest, RemoveThenReinsert) {
  ASSERT_TRUE(view_->Insert(1, FileType::kRegular, "a").ok());
  ASSERT_TRUE(view_->Insert(2, FileType::kRegular, "b").ok());
  ASSERT_TRUE(view_->Insert(3, FileType::kRegular, "c").ok());
  ASSERT_TRUE(view_->Remove("b").ok());
  EXPECT_EQ(view_->Find("b").status().code(), ErrorCode::kNotFound);
  ASSERT_TRUE(view_->Validate().ok());
  // The freed space is reusable.
  ASSERT_TRUE(view_->Insert(4, FileType::kDirectory, "bb").ok());
  auto listing = view_->List();
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 3u);
}

TEST_F(DirBlockTest, RemoveFirstRecordLeavesHole) {
  ASSERT_TRUE(view_->Insert(1, FileType::kRegular, "first").ok());
  ASSERT_TRUE(view_->Insert(2, FileType::kRegular, "second").ok());
  ASSERT_TRUE(view_->Remove("first").ok());
  ASSERT_TRUE(view_->Validate().ok());
  EXPECT_TRUE(view_->Find("second").ok());
  ASSERT_TRUE(view_->Insert(3, FileType::kRegular, "third").ok());
  EXPECT_TRUE(view_->Find("third").ok());
}

TEST_F(DirBlockTest, FillsUntilNoSpace) {
  int inserted = 0;
  for (int i = 0; i < 1000; ++i) {
    std::string name = "file_" + std::to_string(i);
    Status status = view_->Insert(static_cast<InodeNum>(i + 1), FileType::kRegular, name);
    if (!status.ok()) {
      EXPECT_EQ(status.code(), ErrorCode::kNoSpace);
      break;
    }
    ++inserted;
  }
  EXPECT_GT(inserted, 20);  // 1024-byte block should hold dozens of entries.
  auto listing = view_->List();
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(static_cast<int>(listing->size()), inserted);
  // Every inserted entry findable.
  for (int i = 0; i < inserted; ++i) {
    EXPECT_TRUE(view_->Find("file_" + std::to_string(i)).ok());
  }
}

TEST_F(DirBlockTest, SetInodeRewritesEntry) {
  ASSERT_TRUE(view_->Insert(5, FileType::kRegular, "victim").ok());
  ASSERT_TRUE(view_->SetInode("victim", 9, FileType::kDirectory).ok());
  auto entry = view_->Find("victim");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->ino, 9u);
  EXPECT_EQ(entry->type, FileType::kDirectory);
}

TEST_F(DirBlockTest, ValidateRejectsCorruptReclen) {
  ASSERT_TRUE(view_->Insert(1, FileType::kRegular, "x").ok());
  block_[8] = std::byte{3};  // reclen low byte: unaligned, too small.
  block_[9] = std::byte{0};
  EXPECT_FALSE(view_->Validate().ok());
}

TEST(DirRecordSizeTest, AlignsToFour) {
  EXPECT_EQ(DirRecordSize(0) % 4, 0u);
  EXPECT_EQ(DirRecordSize(1), DirRecordSize(3));
  EXPECT_LT(DirRecordSize(1), DirRecordSize(4));
}

TEST(SplitPathTest, Basics) {
  EXPECT_EQ(SplitPath("/a/b/c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitPath("a/b"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitPath("//a///b//"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(SplitPath("/").empty());
  EXPECT_TRUE(SplitPath("").empty());
}

TEST(SplitPathTest, DotsHandling) {
  EXPECT_EQ(SplitPath("/a/./b"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitPath("/a/../b"), (std::vector<std::string>{"a", "..", "b"}));
  EXPECT_EQ(SplitPath("."), std::vector<std::string>{});
}

}  // namespace
}  // namespace logfs
