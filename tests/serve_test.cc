// Tests for the multi-client file service (src/serve/): protocol basics,
// lease sharing/revocation, cache consistency under the online shadow
// referee, retry/dedup under a lossy transport, lease-clock edge cases, and
// the group-commit coalescing seam.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/disk/fault_disk.h"
#include "src/disk/memory_disk.h"
#include "src/lfs/lfs_file_system.h"
#include "src/obs/metrics.h"
#include "src/serve/cluster.h"
#include "src/serve/driver.h"
#include "src/serve/lease.h"
#include "src/serve/server.h"
#include "src/sim/event_queue.h"
#include "src/sim/sim_clock.h"
#include "src/workload/serve_load.h"

namespace logfs::serve {
namespace {

std::vector<std::byte> Bytes(size_t n, uint64_t seed) {
  std::vector<std::byte> data(n);
  uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
  for (size_t i = 0; i < n; ++i) {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    data[i] = static_cast<std::byte>((x * 0x2545F4914F6CDD1Dull) >> 56);
  }
  return data;
}

// Synchronous wrappers: issue the async op, then run the cluster until every
// client is idle again.
Result<uint64_t> OpenSync(ServeCluster& cluster, Client* client, const std::string& path) {
  std::optional<Result<uint64_t>> got;
  client->Open(path, [&](Result<uint64_t> r) { got = std::move(r); });
  Status settled = cluster.Settle();
  if (!settled.ok()) {
    return settled;
  }
  if (!got.has_value()) {
    return IoError("open never completed");
  }
  return std::move(*got);
}

Result<std::vector<std::byte>> ReadSync(ServeCluster& cluster, Client* client,
                                        uint64_t handle, uint64_t offset, uint64_t length) {
  std::optional<Result<std::vector<std::byte>>> got;
  client->Read(handle, offset, length, [&](Result<std::vector<std::byte>> r) {
    got = std::move(r);
  });
  Status settled = cluster.Settle();
  if (!settled.ok()) {
    return settled;
  }
  if (!got.has_value()) {
    return IoError("read never completed");
  }
  return std::move(*got);
}

Status WriteSync(ServeCluster& cluster, Client* client, uint64_t handle, uint64_t offset,
                 std::vector<std::byte> data) {
  std::optional<Status> got;
  client->Write(handle, offset, std::move(data), [&](Status st) { got = st; });
  Status settled = cluster.Settle();
  if (!settled.ok()) {
    return settled;
  }
  if (!got.has_value()) {
    return IoError("write never completed");
  }
  return *got;
}

Status CommitSync(ServeCluster& cluster, Client* client) {
  std::optional<Status> got;
  client->Commit([&](Status st) { got = st; });
  Status settled = cluster.Settle();
  if (!settled.ok()) {
    return settled;
  }
  if (!got.has_value()) {
    return IoError("commit never completed");
  }
  return *got;
}

Status CloseSync(ServeCluster& cluster, Client* client, uint64_t handle) {
  std::optional<Status> got;
  client->Close(handle, [&](Status st) { got = st; });
  Status settled = cluster.Settle();
  if (!settled.ok()) {
    return settled;
  }
  if (!got.has_value()) {
    return IoError("close never completed");
  }
  return *got;
}

TEST(ServeTest, SingleClientOpenWriteReadCommitClose) {
  auto cluster = ServeCluster::Create();
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  ServeCluster& c = **cluster;
  Client* a = c.client(0);

  auto h = OpenSync(c, a, "/f");
  ASSERT_TRUE(h.ok()) << h.status().ToString();

  const auto payload = Bytes(10000, 42);
  ASSERT_TRUE(WriteSync(c, a, *h, 0, payload).ok());

  auto back = ReadSync(c, a, *h, 0, payload.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, payload);

  ASSERT_TRUE(CommitSync(c, a).ok());
  ASSERT_TRUE(CloseSync(c, a, *h).ok());

  EXPECT_EQ(c.shadow().violation_count(), 0u) << c.shadow().violations()[0];
  EXPECT_GT(c.shadow().reads_checked(), 0u);
}

TEST(ServeTest, CachedReadsServeLocallyUnderLease) {
  auto cluster = ServeCluster::Create();
  ASSERT_TRUE(cluster.ok());
  ServeCluster& c = **cluster;
  Client* a = c.client(0);

  auto h = OpenSync(c, a, "/f");
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(WriteSync(c, a, *h, 0, Bytes(4096, 7)).ok());

  // First read may populate; the second must be a pure cache hit with no
  // extra transport traffic.
  ASSERT_TRUE(ReadSync(c, a, *h, 0, 4096).ok());
  const uint64_t sent_before = c.transport()->sent();
  auto again = ReadSync(c, a, *h, 0, 4096);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(c.transport()->sent(), sent_before) << "cached read hit the wire";
  EXPECT_GT(a->cache_stats().hits, 0u);
  EXPECT_EQ(c.shadow().violation_count(), 0u);
}

TEST(ServeTest, WriteSharingRevokesAndWritesBack) {
  ServeClusterParams params;
  params.clients = 2;
  auto cluster = ServeCluster::Create(params);
  ASSERT_TRUE(cluster.ok());
  ServeCluster& c = **cluster;
  Client* a = c.client(0);
  Client* b = c.client(1);

  auto ha = OpenSync(c, a, "/shared");
  ASSERT_TRUE(ha.ok());
  const auto payload = Bytes(8192, 3);
  ASSERT_TRUE(WriteSync(c, a, *ha, 0, payload).ok());
  EXPECT_GT(a->cache_stats().dirty_blocks, 0u);

  // B's read must revoke A's write lease, forcing A's dirty blocks back to
  // the server first — then B sees exactly A's bytes.
  auto hb = OpenSync(c, b, "/shared");
  ASSERT_TRUE(hb.ok());
  auto read = ReadSync(c, b, *hb, 0, payload.size());
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, payload);

  EXPECT_GE(c.server()->revokes_sent(), 1u);
  EXPECT_GT(a->cache_stats().writebacks, 0u);
  EXPECT_EQ(c.server()->stale_writebacks(), 0u);
  EXPECT_EQ(c.shadow().violation_count(), 0u)
      << c.shadow().violations()[0];

  // And the reverse: B writes, A reads back the new bytes.
  const auto second = Bytes(8192, 4);
  ASSERT_TRUE(WriteSync(c, b, *hb, 0, second).ok());
  auto reread = ReadSync(c, a, *ha, 0, second.size());
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(*reread, second);
  EXPECT_EQ(c.shadow().violation_count(), 0u);
}

TEST(ServeTest, LossyTransportCostsLatencyNeverCorrectness) {
  ServeClusterParams params;
  params.clients = 3;
  params.transport.drop_probability = 0.15;
  params.transport.jitter_seconds = 300e-6;
  auto cluster = ServeCluster::Create(params);
  ASSERT_TRUE(cluster.ok());
  ServeCluster& c = **cluster;

  ServeLoadParams lp;
  lp.clients = 3;
  lp.files = 4;
  lp.ops_per_client = 25;
  lp.write_fraction = 0.4;
  lp.mean_think_seconds = 0.005;
  ServeLoad load = MakeSharedLoad(lp);
  auto stats = DriveSharedLoad(c, load);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->errors, 0u)
      << (stats->first_errors.empty() ? "" : stats->first_errors[0]);
  EXPECT_GT(c.transport()->dropped(), 0u) << "fault mode never fired";
  EXPECT_GT(c.server()->duplicates_suppressed(), 0u)
      << "drops without retransmission hitting the dedup cache";
  EXPECT_EQ(c.shadow().violation_count(), 0u)
      << c.shadow().violations()[0];
}

TEST(ServeTest, SameSeedSameRun) {
  auto run = [](uint64_t seed) {
    ServeClusterParams params;
    params.clients = 3;
    params.transport.drop_probability = 0.1;
    params.transport.jitter_seconds = 200e-6;
    params.transport.seed = seed;
    auto cluster = ServeCluster::Create(params);
    EXPECT_TRUE(cluster.ok());
    ServeLoadParams lp;
    lp.clients = 3;
    lp.files = 3;
    lp.ops_per_client = 15;
    lp.write_fraction = 0.5;
    lp.seed = seed;
    auto stats = DriveSharedLoad(**cluster, MakeSharedLoad(lp));
    EXPECT_TRUE(stats.ok());
    struct Fingerprint {
      uint64_t sent, delivered, dropped, ops;
      double now;
    };
    return Fingerprint{(*cluster)->transport()->sent(), (*cluster)->transport()->delivered(),
                       (*cluster)->transport()->dropped(), stats->ops_completed,
                       (*cluster)->clock()->Now()};
  };
  auto first = run(99);
  auto second = run(99);
  EXPECT_EQ(first.sent, second.sent);
  EXPECT_EQ(first.delivered, second.delivered);
  EXPECT_EQ(first.dropped, second.dropped);
  EXPECT_EQ(first.ops, second.ops);
  EXPECT_EQ(first.now, second.now);
  auto third = run(100);
  EXPECT_NE(first.sent, third.sent);
}

TEST(ServeTest, WriteSharingStormStaysConsistent) {
  ServeClusterParams params;
  params.clients = 8;
  auto cluster = ServeCluster::Create(params);
  ASSERT_TRUE(cluster.ok());
  ServeCluster& c = **cluster;

  ServeLoadParams lp;
  lp.clients = 8;
  lp.files = 3;  // Heavy write sharing: everyone fights over 3 files.
  lp.ops_per_client = 30;
  lp.write_fraction = 0.7;
  lp.commit_probability = 0.1;
  lp.mean_think_seconds = 0.002;
  auto stats = DriveSharedLoad(c, MakeSharedLoad(lp));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->errors, 0u)
      << (stats->first_errors.empty() ? "" : stats->first_errors[0]);
  EXPECT_GE(c.server()->revokes_sent(), 1u) << "storm produced no lease conflicts";
  EXPECT_EQ(c.server()->stale_writebacks(), 0u);
  EXPECT_EQ(c.shadow().violation_count(), 0u)
      << c.shadow().violations()[0];
}

TEST(ServeTest, GroupCommitCoalescesRedundantSyncs) {
  if constexpr (!obs::kMetricsEnabled) {
    GTEST_SKIP() << "metrics disabled";
  } else {
    auto& coalesced = obs::Registry().GetCounter("logfs.sync.coalesced");
    const uint64_t before = coalesced.Value();

    ServeClusterParams params;
    params.clients = 2;
    auto cluster = ServeCluster::Create(params);
    ASSERT_TRUE(cluster.ok());
    ServeCluster& c = **cluster;
    Client* a = c.client(0);
    Client* b = c.client(1);

    auto ha = OpenSync(c, a, "/f");
    ASSERT_TRUE(ha.ok());
    ASSERT_TRUE(WriteSync(c, a, *ha, 0, Bytes(4096, 1)).ok());
    ASSERT_TRUE(CommitSync(c, a).ok());
    // Second commit of the same horizon: nothing new to flush — the seam
    // must absorb it instead of checkpointing again.
    ASSERT_TRUE(CommitSync(c, a).ok());
    // A read grant over the already-durable file coalesces its pre-grant
    // sync too.
    auto hb = OpenSync(c, b, "/f");
    ASSERT_TRUE(hb.ok());
    ASSERT_TRUE(ReadSync(c, b, *hb, 0, 4096).ok());

    EXPECT_GT(coalesced.Value(), before)
        << "redundant syncs were not coalesced";
  }
}

// --- lease-clock edge cases -------------------------------------------------

TEST(ServeTest, RenewalExactlyAtExpiryTickIsTooLate) {
  LeaseManager leases(30.0);
  auto grant = leases.Acquire(/*fh=*/7, /*client=*/1, LeaseKind::kWrite, /*now=*/0.0);
  ASSERT_TRUE(grant.granted);
  EXPECT_EQ(grant.expires_at, 30.0);

  double expires = 0.0;
  // One tick before the boundary: still valid, renewable.
  EXPECT_TRUE(leases.Renew(7, 1, 29.999, &expires));
  EXPECT_EQ(expires, 29.999 + 30.0);
  // Exactly at the (renewed) expiry: dead. now < expires_at is strict.
  EXPECT_FALSE(leases.Renew(7, 1, expires, &expires));
  EXPECT_EQ(leases.Held(7, 1, expires), LeaseKind::kNone);
  // The file is grantable to someone else at that same instant.
  auto regrant = leases.Acquire(7, 2, LeaseKind::kWrite, 59.999);
  EXPECT_TRUE(regrant.granted);
}

TEST(ServeTest, WritebackAfterLeaseExpiryIsRejectedStale) {
  ServeClusterParams params;
  params.clients = 2;
  params.lease_seconds = 5.0;
  params.strict_shadow = false;  // A's write is deliberately lost to expiry.
  auto cluster = ServeCluster::Create(params);
  ASSERT_TRUE(cluster.ok());
  ServeCluster& c = **cluster;
  Client* a = c.client(0);
  Client* b = c.client(1);

  auto ha = OpenSync(c, a, "/f");
  ASSERT_TRUE(ha.ok());
  ASSERT_TRUE(WriteSync(c, a, *ha, 0, Bytes(4096, 1)).ok());

  // A goes idle past its lease term; the dirty block stays local.
  c.RunFor(params.lease_seconds + 2.0);

  // B takes the write lease (A's has expired server-side) and commits.
  auto hb = OpenSync(c, b, "/f");
  ASSERT_TRUE(hb.ok());
  const auto winner = Bytes(4096, 2);
  ASSERT_TRUE(WriteSync(c, b, *hb, 0, winner).ok());
  ASSERT_TRUE(CommitSync(c, b).ok());

  // A's belated write-back must be rejected as stale, not applied over B's.
  Status commit = CommitSync(c, a);
  EXPECT_FALSE(commit.ok());
  EXPECT_EQ(commit.code(), ErrorCode::kBusy) << commit.ToString();
  EXPECT_GE(c.server()->stale_writebacks(), 1u);

  // B's data survived.
  auto read = ReadSync(c, b, *hb, 0, winner.size());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, winner);
}

TEST(ServeTest, WriteOnReadOnlyDemotedServerFailsCleanly) {
  // Hand-built rig so a FaultInjectingDisk sits under the LFS: both
  // checkpoint regions go write-bad, the next sync demotes the mount, and a
  // write-lease grant (whose pre-grant durability sync can no longer
  // succeed) surfaces kReadOnly to the client.
  SimClock clock;
  MemoryDisk inner(49152, &clock);
  FaultInjectingDisk fault(&inner);
  LfsParams lfs_params;
  lfs_params.max_inodes = 2048;
  lfs_params.clean_start_segments = 4;
  lfs_params.clean_stop_segments = 6;
  lfs_params.reserved_segments = 3;
  ASSERT_TRUE(LfsFileSystem::Format(&inner, lfs_params).ok());
  LfsFileSystem::Options mount_options;
  mount_options.roll_forward = true;
  auto fs = LfsFileSystem::Mount(&fault, &clock, nullptr, mount_options);
  ASSERT_TRUE(fs.ok());
  EventQueue events(&clock);
  SimTransport transport(&clock, &events, {});
  FileServer server(fs->get(), &clock, &events, &transport, {});
  Client client(&clock, &events, &transport, server.node());

  std::optional<Result<uint64_t>> opened;
  client.Open("/f", [&](Result<uint64_t> r) { opened = std::move(r); });
  std::optional<Status> wrote;
  while (!opened.has_value() || !wrote.has_value()) {
    ASSERT_FALSE(events.empty());
    events.RunOne();
    if (opened.has_value() && opened->ok() && !wrote.has_value() && !client.busy()) {
      // File exists and is durable; now demote, then try to write.
      ASSERT_TRUE((*fs)->Sync().ok());
      const LfsSuperblock& sb = (*fs)->superblock();
      fault.MarkBadSectors(sb.SectorsPerBlock(),
                           2ull * sb.checkpoint_region_blocks * sb.SectorsPerBlock(),
                           FaultInjectingDisk::BadSectorMode::kWrite);
      // Dirty the log so the demotion sync has something to fail on.
      ASSERT_TRUE((*fs)->Create(kRootIno, "dirt", FileType::kRegular).ok());
      Status sync = (*fs)->Sync();
      ASSERT_EQ(sync.code(), ErrorCode::kMediaError) << sync.ToString();
      ASSERT_TRUE((*fs)->read_only());
      client.Write(**opened, 0, Bytes(4096, 5), [&](Status st) { wrote = st; });
    }
  }
  ASSERT_TRUE(opened->ok()) << opened->status().ToString();
  EXPECT_EQ(wrote->code(), ErrorCode::kReadOnly) << wrote->ToString();
}

TEST(ServeTest, ThousandClientZipfSmoke) {
  ServeClusterParams params;
  params.clients = 1000;
  params.client.cache_blocks = 16;  // Keep the footprint sane.
  auto cluster = ServeCluster::Create(params);
  ASSERT_TRUE(cluster.ok());
  ServeCluster& c = **cluster;

  ServeLoadParams lp;
  lp.clients = 1000;
  lp.files = 64;
  lp.ops_per_client = 4;
  lp.write_fraction = 0.2;
  lp.file_size = 16 * 1024;
  lp.mean_think_seconds = 0.1;
  auto stats = DriveSharedLoad(c, MakeSharedLoad(lp));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->errors, 0u)
      << (stats->first_errors.empty() ? "" : stats->first_errors[0]);
  EXPECT_GE(stats->ops_completed, 4000u);
  EXPECT_EQ(c.shadow().violation_count(), 0u)
      << c.shadow().violations()[0];
}

// Inspection surfaces used by `lfs_inspect serve`.
TEST(ServeTest, IntrospectionSurfacesReportLiveState) {
  ServeClusterParams params;
  params.clients = 2;
  auto cluster = ServeCluster::Create(params);
  ASSERT_TRUE(cluster.ok());
  ServeCluster& c = **cluster;
  Client* a = c.client(0);

  auto ha = OpenSync(c, a, "/f");
  ASSERT_TRUE(ha.ok());
  ASSERT_TRUE(WriteSync(c, a, *ha, 0, Bytes(4096, 1)).ok());

  auto table = c.server()->leases().Dump(c.clock()->Now());
  ASSERT_FALSE(table.empty());
  EXPECT_EQ(table[0].record.kind, LeaseKind::kWrite);

  auto handles = a->DumpHandles();
  ASSERT_EQ(handles.size(), 1u);
  EXPECT_EQ(handles[0].path, "/f");
  EXPECT_GT(handles[0].dirty, 0u);

  auto sessions = c.server()->DumpSessions();
  ASSERT_FALSE(sessions.empty());
  EXPECT_GT(sessions[0].max_request_id, 0u);
}

}  // namespace
}  // namespace logfs::serve
