// Crash-recovery tests: checkpoint restore, roll-forward over segment
// summaries, torn-write atomicity, crash-during-checkpoint alternation, and
// a crash-anywhere property sweep driven by fault injection.
#include <gtest/gtest.h>

#include "src/disk/fault_disk.h"
#include "src/lfs/lfs_check.h"
#include "tests/fs_fixture.h"

namespace logfs {
namespace {

constexpr uint64_t kSectors = 131072;

struct CrashRig {
  CrashRig() : clock(), inner(kSectors, &clock), fault(&inner) {
    Status formatted = LfsFileSystem::Format(&inner, LfsInstance::DefaultParams());
    if (!formatted.ok()) {
      std::abort();
    }
  }

  Result<std::unique_ptr<LfsFileSystem>> MountFaulty(bool roll_forward = true) {
    LfsFileSystem::Options options;
    options.roll_forward = roll_forward;
    return LfsFileSystem::Mount(&fault, &clock, nullptr, options);
  }

  // "Reboot": clear the crash and mount from the surviving image.
  Result<std::unique_ptr<LfsFileSystem>> Reboot(bool roll_forward = true) {
    fault.Reset();
    LfsFileSystem::Options options;
    options.roll_forward = roll_forward;
    return LfsFileSystem::Mount(&inner, &clock, nullptr, options);
  }

  SimClock clock;
  MemoryDisk inner;
  FaultInjectingDisk fault;
};

Status ExpectClean(LfsFileSystem* fs) {
  LfsChecker checker(fs);
  ASSIGN_OR_RETURN(LfsCheckReport report, checker.Check());
  if (!report.ok()) {
    return CorruptedError(report.Summary());
  }
  return OkStatus();
}

TEST(LfsRecoveryTest, CheckpointRestoreWithoutRollForward) {
  CrashRig rig;
  {
    auto fs = rig.MountFaulty();
    ASSERT_TRUE(fs.ok());
    PathFs paths(fs->get());
    ASSERT_TRUE(paths.WriteFile("/durable", TestBytes(5000, 1)).ok());
    ASSERT_TRUE((*fs)->Sync().ok());  // Checkpoint.
    ASSERT_TRUE(paths.WriteFile("/volatile", TestBytes(5000, 2)).ok());
    // Crash with /volatile only in the cache.
    rig.fault.CrashNow();
  }
  auto fs = rig.Reboot(/*roll_forward=*/false);
  ASSERT_TRUE(fs.ok());
  PathFs paths(fs->get());
  auto durable = paths.ReadFile("/durable");
  ASSERT_TRUE(durable.ok());
  EXPECT_EQ(*durable, TestBytes(5000, 1));
  EXPECT_FALSE(paths.Exists("/volatile"));  // Lost: written after checkpoint.
  EXPECT_TRUE(ExpectClean(fs->get()).ok());
}

TEST(LfsRecoveryTest, RollForwardRecoversFsyncedData) {
  CrashRig rig;
  {
    auto fs = rig.MountFaulty();
    ASSERT_TRUE(fs.ok());
    PathFs paths(fs->get());
    ASSERT_TRUE((*fs)->Sync().ok());
    // Written and fsynced after the checkpoint: lives only in the log tail.
    ASSERT_TRUE(paths.WriteFile("/after", TestBytes(9000, 3)).ok());
    auto ino = paths.Resolve("/after");
    ASSERT_TRUE(ino.ok());
    ASSERT_TRUE((*fs)->Fsync(*ino).ok());
    // The root directory's new block and inode were flushed with the file's
    // partial segment (same write-back), so the name is recoverable too.
    rig.fault.CrashNow();
  }
  auto fs = rig.Reboot(/*roll_forward=*/true);
  ASSERT_TRUE(fs.ok());
  EXPECT_GT((*fs)->rolled_forward_partials(), 0u);
  PathFs paths(fs->get());
  auto back = paths.ReadFile("/after");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, TestBytes(9000, 3));
  EXPECT_TRUE(ExpectClean(fs->get()).ok());
}

TEST(LfsRecoveryTest, WithoutRollForwardFsyncedDataIsInvisible) {
  CrashRig rig;
  {
    auto fs = rig.MountFaulty();
    ASSERT_TRUE(fs.ok());
    PathFs paths(fs->get());
    ASSERT_TRUE((*fs)->Sync().ok());
    ASSERT_TRUE(paths.WriteFile("/after", TestBytes(1000, 4)).ok());
    auto ino = paths.Resolve("/after");
    ASSERT_TRUE(ino.ok());
    ASSERT_TRUE((*fs)->Fsync(*ino).ok());
    rig.fault.CrashNow();
  }
  auto fs = rig.Reboot(/*roll_forward=*/false);
  ASSERT_TRUE(fs.ok());
  PathFs paths(fs->get());
  EXPECT_FALSE(paths.Exists("/after"));
  EXPECT_TRUE(ExpectClean(fs->get()).ok());
}

TEST(LfsRecoveryTest, RollForwardAppliesDeletes) {
  CrashRig rig;
  {
    auto fs = rig.MountFaulty();
    ASSERT_TRUE(fs.ok());
    PathFs paths(fs->get());
    ASSERT_TRUE(paths.WriteFile("/doomed", TestBytes(2000, 5)).ok());
    ASSERT_TRUE((*fs)->Sync().ok());
    // Delete after the checkpoint; flush the meta-log via fsync of the root.
    ASSERT_TRUE(paths.Unlink("/doomed").ok());
    ASSERT_TRUE((*fs)->Fsync(kRootIno).ok());
    rig.fault.CrashNow();
  }
  auto fs = rig.Reboot();
  ASSERT_TRUE(fs.ok());
  PathFs paths(fs->get());
  EXPECT_FALSE(paths.Exists("/doomed"));
  // The freed inode must not be resurrected as an orphan either.
  EXPECT_TRUE(ExpectClean(fs->get()).ok());
}

TEST(LfsRecoveryTest, TornLogWriteIsAtomicallyDiscarded) {
  CrashRig rig;
  {
    auto fs = rig.MountFaulty();
    ASSERT_TRUE(fs.ok());
    PathFs paths(fs->get());
    ASSERT_TRUE((*fs)->Sync().ok());
    ASSERT_TRUE(paths.WriteFile("/torn", TestBytes(100000, 6)).ok());
    // The next log write tears after 5 sectors: the partial segment's CRC
    // cannot validate, so recovery must discard it entirely.
    rig.fault.CrashAfterWrites(0, /*torn_sectors=*/5);
    (void)(*fs)->Sync();  // Fails with kCrashed.
  }
  auto fs = rig.Reboot();
  ASSERT_TRUE(fs.ok());
  PathFs paths(fs->get());
  EXPECT_FALSE(paths.Exists("/torn"));
  EXPECT_TRUE(ExpectClean(fs->get()).ok());
}

TEST(LfsRecoveryTest, CrashDuringCheckpointFallsBackToOtherRegion) {
  CrashRig rig;
  {
    auto fs = rig.MountFaulty();
    ASSERT_TRUE(fs.ok());
    PathFs paths(fs->get());
    ASSERT_TRUE(paths.WriteFile("/stable", TestBytes(3000, 7)).ok());
    ASSERT_TRUE((*fs)->Sync().ok());  // Good checkpoint in one region.
    ASSERT_TRUE(paths.WriteFile("/next", TestBytes(3000, 8)).ok());
    // Count the writes in the next checkpoint up to the region write, then
    // tear the region write itself. The checkpoint-region write is the only
    // *synchronous* write in a checkpoint, so crash on it specifically:
    // flush everything first, then arm a torn write for the sync region.
    ASSERT_TRUE((*fs)->Fsync(paths.Resolve("/next").value()).ok());
    rig.fault.CrashAfterWrites(1, /*torn_sectors=*/2);  // imap/usage flush + region.
    (void)(*fs)->Checkpoint();
  }
  auto fs = rig.Reboot(/*roll_forward=*/false);
  ASSERT_TRUE(fs.ok());
  PathFs paths(fs->get());
  // The older checkpoint still mounts the stable file.
  EXPECT_TRUE(paths.Exists("/stable"));
  EXPECT_TRUE(ExpectClean(fs->get()).ok());
}

TEST(LfsRecoveryTest, RemountIsIdempotent) {
  CrashRig rig;
  {
    auto fs = rig.MountFaulty();
    ASSERT_TRUE(fs.ok());
    PathFs paths(fs->get());
    ASSERT_TRUE(paths.WriteFile("/f", TestBytes(1234, 9)).ok());
  }  // Destructor syncs.
  for (int i = 0; i < 3; ++i) {
    auto fs = rig.Reboot();
    ASSERT_TRUE(fs.ok());
    PathFs paths(fs->get());
    auto back = paths.ReadFile("/f");
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, TestBytes(1234, 9));
    EXPECT_TRUE(ExpectClean(fs->get()).ok());
  }
}

// Double crash: the machine dies again *during the recovery itself* (the
// roll-forward's own checkpoint writes). The second recovery must still
// mount from the old checkpoint and roll the same log forward — nothing in
// the first, interrupted recovery may have damaged the rolled log.
class DoubleCrashTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DoubleCrashTest, CrashDuringRecoveryIsItselfRecoverable) {
  CrashRig rig;
  {
    auto fs = rig.MountFaulty();
    ASSERT_TRUE(fs.ok());
    PathFs paths(fs->get());
    ASSERT_TRUE((*fs)->Sync().ok());
    // Post-checkpoint data, durable only via the log tail.
    ASSERT_TRUE(paths.WriteFile("/tail1", TestBytes(6000, 1)).ok());
    ASSERT_TRUE(paths.WriteFile("/tail2", TestBytes(6000, 2)).ok());
    ASSERT_TRUE((*fs)->Fsync(kRootIno).ok());
    rig.fault.CrashNow();  // First crash.
  }
  // First recovery attempt: dies after N writes (inside the recovery
  // checkpoint: imap/usage partials or the region write).
  rig.fault.Reset();
  rig.fault.CrashAfterWrites(GetParam(), GetParam() % 3);
  {
    auto fs = rig.MountFaulty();
    // Mount may fail with kCrashed mid-recovery; both outcomes are fine.
    (void)fs;
  }
  // Second recovery on the surviving image must fully succeed.
  rig.fault.Reset();
  auto fs = rig.Reboot();
  ASSERT_TRUE(fs.ok()) << "second recovery after crash point " << GetParam() << ": "
                       << fs.status().ToString();
  PathFs paths(fs->get());
  auto t1 = paths.ReadFile("/tail1");
  ASSERT_TRUE(t1.ok()) << "crash point " << GetParam();
  EXPECT_EQ(*t1, TestBytes(6000, 1));
  auto t2 = paths.ReadFile("/tail2");
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(*t2, TestBytes(6000, 2));
  EXPECT_TRUE(ExpectClean(fs->get()).ok()) << "crash point " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, DoubleCrashTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 8));

// Property sweep: run a workload, crash after the Nth device write for many
// N, remount with roll-forward, and require a consistent file system whose
// every surviving file has prefix-consistent content.
class CrashAnywhereTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashAnywhereTest, RemountsConsistently) {
  CrashRig rig;
  const uint64_t crash_after = GetParam();
  {
    auto fs = rig.MountFaulty();
    ASSERT_TRUE(fs.ok());
    PathFs paths(fs->get());
    rig.fault.CrashAfterWrites(crash_after, /*torn_sectors=*/crash_after % 7);
    // A workload with creates, writes, deletes, syncs; it dies somewhere.
    for (int i = 0; i < 40; ++i) {
      Status status = paths.WriteFile("/w" + std::to_string(i), TestBytes(20000, i));
      if (!status.ok()) {
        break;
      }
      if (i % 5 == 4) {
        if (!paths.Unlink("/w" + std::to_string(i - 2)).ok()) {
          break;
        }
      }
      if (i % 7 == 6) {
        if (!(*fs)->Sync().ok()) {
          break;
        }
      }
    }
    rig.fault.CrashNow();  // If the workload survived, crash at the end.
  }
  auto fs = rig.Reboot();
  ASSERT_TRUE(fs.ok()) << "mount after crash point " << crash_after << " failed: "
                       << fs.status().ToString();
  // The volume is internally consistent...
  ASSERT_TRUE(ExpectClean(fs->get()).ok()) << "crash point " << crash_after;
  // ...and any surviving file has exactly the content written to it.
  PathFs paths(fs->get());
  for (int i = 0; i < 40; ++i) {
    const std::string name = "/w" + std::to_string(i);
    if (!paths.Exists(name)) {
      continue;
    }
    auto back = paths.ReadFile(name);
    ASSERT_TRUE(back.ok());
    if (!back->empty()) {
      EXPECT_EQ(*back, TestBytes(back->size(), i)) << name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, CrashAnywhereTest,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233,
                                           377, 610));

// Torn-partial-segment sweep: the log write carrying a fsynced file tears
// after N sectors, for N ranging from "one sector" through "the summary
// block exactly" (8 = one 4 KB block) to "most of the segment". Every tear
// must be atomically discarded by roll-forward — the summary CRC covers the
// content blocks, so a summary whose content never landed cannot validate —
// while everything durable before the tear survives.
class TornPartialSegmentTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TornPartialSegmentTest, RollForwardDiscardsTheTearKeepsThePast) {
  const uint64_t torn_sectors = GetParam();
  CrashRig rig;
  {
    auto fs = rig.MountFaulty();
    ASSERT_TRUE(fs.ok());
    PathFs paths(fs->get());
    ASSERT_TRUE(paths.WriteFile("/durable", TestBytes(5000, 1)).ok());
    ASSERT_TRUE((*fs)->Sync().ok());  // Checkpointed: survives any crash.
    // Fsynced after the checkpoint: durable only through roll-forward.
    ASSERT_TRUE(paths.WriteFile("/early", TestBytes(9000, 2)).ok());
    auto early = paths.Resolve("/early");
    ASSERT_TRUE(early.ok());
    ASSERT_TRUE((*fs)->Fsync(*early).ok());
    // This file's partial segment tears mid-transfer.
    ASSERT_TRUE(paths.WriteFile("/late", TestBytes(100000, 3)).ok());
    auto late = paths.Resolve("/late");
    ASSERT_TRUE(late.ok());
    rig.fault.CrashAfterSectors(torn_sectors, /*torn=*/true);
    EXPECT_EQ((*fs)->Fsync(*late).code(), ErrorCode::kCrashed);
  }
  auto fs = rig.Reboot(/*roll_forward=*/true);
  ASSERT_TRUE(fs.ok()) << "torn=" << torn_sectors << ": " << fs.status().ToString();
  PathFs paths(fs->get());
  auto durable = paths.ReadFile("/durable");
  ASSERT_TRUE(durable.ok()) << "torn=" << torn_sectors;
  EXPECT_EQ(*durable, TestBytes(5000, 1));
  auto early = paths.ReadFile("/early");
  ASSERT_TRUE(early.ok()) << "torn=" << torn_sectors;
  EXPECT_EQ(*early, TestBytes(9000, 2));
  EXPECT_FALSE(paths.Exists("/late")) << "torn=" << torn_sectors;
  EXPECT_TRUE(ExpectClean(fs->get()).ok()) << "torn=" << torn_sectors;
}

INSTANTIATE_TEST_SUITE_P(TornSectors, TornPartialSegmentTest,
                         ::testing::Values(1, 4, 7, 8, 9, 15, 16, 31, 64, 128));

}  // namespace
}  // namespace logfs
