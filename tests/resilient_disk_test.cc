// Unit tests for ResilientDisk: bounded retry of transient kIoError results
// with exponential simulated-time backoff, pass-through of persistent
// failures, and reclassification of an exhausted retry budget to kMediaError.
#include <gtest/gtest.h>

#include <vector>

#include "src/disk/fault_disk.h"
#include "src/disk/memory_disk.h"
#include "src/disk/resilient_disk.h"
#include "src/sim/sim_clock.h"

namespace logfs {
namespace {

std::vector<std::byte> Pattern(size_t bytes, uint8_t seed) {
  std::vector<std::byte> data(bytes);
  for (size_t i = 0; i < bytes; ++i) {
    data[i] = static_cast<std::byte>(seed + i);
  }
  return data;
}

TEST(ResilientDiskTest, RecoversFromSingleTransientReadError) {
  SimClock clock;
  MemoryDisk inner(64, &clock);
  FaultInjectingDisk faulty(&inner);
  ResilientDisk disk(&faulty, &clock);
  auto data = Pattern(kSectorSize, 1);
  ASSERT_TRUE(disk.WriteSectors(3, data).ok());
  faulty.FailNthRead(faulty.read_requests_seen());
  std::vector<std::byte> out(kSectorSize);
  ASSERT_TRUE(disk.ReadSectors(3, out).ok());  // Retried internally.
  EXPECT_EQ(out, data);
  EXPECT_EQ(disk.retries(), 1u);
  EXPECT_EQ(disk.recovered(), 1u);
  EXPECT_EQ(disk.exhausted(), 0u);
  EXPECT_EQ(faulty.transient_read_errors_injected(), 1u);
}

TEST(ResilientDiskTest, BackoffAdvancesSimulatedClockExponentially) {
  SimClock clock;
  MemoryDisk inner(64, &clock);
  FaultInjectingDisk faulty(&inner);
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_seconds = 0.001;
  policy.backoff_multiplier = 2.0;
  ResilientDisk disk(&faulty, &clock, policy);
  // Fail the next three read requests; the fourth attempt succeeds.
  const uint64_t base = faulty.read_requests_seen();
  faulty.FailNthRead(base);
  faulty.FailNthRead(base + 1);
  faulty.FailNthRead(base + 2);
  const double before = clock.Now();
  std::vector<std::byte> out(kSectorSize);
  ASSERT_TRUE(disk.ReadSectors(0, out).ok());
  // Three backoffs: 0.001 + 0.002 + 0.004 (plus the device's own transfer
  // time, which is nonnegative), so at least 0.007 simulated seconds passed.
  EXPECT_GE(clock.Now() - before, 0.007);
  EXPECT_EQ(disk.retries(), 3u);
  EXPECT_EQ(disk.recovered(), 1u);
}

TEST(ResilientDiskTest, ExhaustedBudgetReclassifiesToMediaError) {
  SimClock clock;
  MemoryDisk inner(64, &clock);
  FaultInjectingDisk faulty(&inner);
  RetryPolicy policy;
  policy.max_attempts = 3;
  ResilientDisk disk(&faulty, &clock, policy);
  const uint64_t base = faulty.read_requests_seen();
  for (uint64_t i = 0; i < policy.max_attempts; ++i) {
    faulty.FailNthRead(base + i);
  }
  std::vector<std::byte> out(kSectorSize);
  EXPECT_EQ(disk.ReadSectors(0, out).code(), ErrorCode::kMediaError);
  EXPECT_EQ(disk.retries(), 2u);  // max_attempts includes the first attempt.
  EXPECT_EQ(disk.recovered(), 0u);
  EXPECT_EQ(disk.exhausted(), 1u);
  EXPECT_EQ(disk.media_errors(), 1u);
}

TEST(ResilientDiskTest, MediaErrorPassesThroughWithoutRetry) {
  SimClock clock;
  MemoryDisk inner(64, &clock);
  FaultInjectingDisk faulty(&inner);
  ResilientDisk disk(&faulty, &clock);
  faulty.MarkBadSectors(0, 1);
  std::vector<std::byte> out(kSectorSize);
  EXPECT_EQ(disk.ReadSectors(0, out).code(), ErrorCode::kMediaError);
  // Exactly one attempt reached the device: persistent faults are not retried.
  EXPECT_EQ(faulty.read_requests_seen(), 1u);
  EXPECT_EQ(disk.retries(), 0u);
  EXPECT_EQ(disk.exhausted(), 0u);
  EXPECT_EQ(disk.media_errors(), 1u);
}

TEST(ResilientDiskTest, CrashedPassesThroughWithoutRetry) {
  SimClock clock;
  MemoryDisk inner(64, &clock);
  FaultInjectingDisk faulty(&inner);
  ResilientDisk disk(&faulty, &clock);
  faulty.CrashNow();
  std::vector<std::byte> out(kSectorSize);
  EXPECT_EQ(disk.ReadSectors(0, out).code(), ErrorCode::kCrashed);
  EXPECT_EQ(disk.WriteSectors(0, Pattern(kSectorSize, 1)).code(), ErrorCode::kCrashed);
  EXPECT_EQ(disk.retries(), 0u);
  EXPECT_EQ(disk.media_errors(), 0u);
}

TEST(ResilientDiskTest, NullClockRetriesWithoutDelay) {
  MemoryDisk inner(64, nullptr);
  FaultInjectingDisk faulty(&inner);
  ResilientDisk disk(&faulty, /*clock=*/nullptr);
  auto data = Pattern(kSectorSize, 2);
  ASSERT_TRUE(disk.WriteSectors(1, data).ok());
  faulty.FailNthRead(faulty.read_requests_seen());
  std::vector<std::byte> out(kSectorSize);
  ASSERT_TRUE(disk.ReadSectors(1, out).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(disk.retries(), 1u);
  EXPECT_EQ(disk.recovered(), 1u);
}

TEST(ResilientDiskTest, TransientWriteIsRetriedAndDataLands) {
  SimClock clock;
  MemoryDisk inner(64, &clock);
  FaultInjectingDisk faulty(&inner);
  ResilientDisk disk(&faulty, &clock);
  auto data = Pattern(2 * kSectorSize, 7);
  faulty.FailNthWrite(faulty.write_requests_seen());
  ASSERT_TRUE(disk.WriteSectors(4, data).ok());
  std::vector<std::byte> out(2 * kSectorSize);
  ASSERT_TRUE(disk.ReadSectors(4, out).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(disk.retries(), 1u);
  EXPECT_EQ(disk.recovered(), 1u);
  EXPECT_EQ(faulty.transient_write_errors_injected(), 1u);
}

}  // namespace
}  // namespace logfs
