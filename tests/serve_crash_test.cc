// Crash-facing tests for the multi-client file service: server crash +
// restart with lease reclaim and dirty-block replay, client crash with
// expiry-based lease reclamation, and the recorded crash-image sweep that
// proves zero stale reads across enumerated server-crash states.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/serve/cluster.h"
#include "src/serve/driver.h"
#include "src/serve/oracle.h"
#include "src/workload/serve_load.h"

namespace logfs::serve {
namespace {

std::vector<std::byte> Bytes(size_t n, uint64_t seed) {
  std::vector<std::byte> data(n);
  uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
  for (size_t i = 0; i < n; ++i) {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    data[i] = static_cast<std::byte>((x * 0x2545F4914F6CDD1Dull) >> 56);
  }
  return data;
}

Result<uint64_t> OpenSync(ServeCluster& cluster, Client* client, const std::string& path) {
  std::optional<Result<uint64_t>> got;
  client->Open(path, [&](Result<uint64_t> r) { got = std::move(r); });
  RETURN_IF_ERROR(cluster.Settle());
  if (!got.has_value()) {
    return IoError("open never completed");
  }
  return std::move(*got);
}

Result<std::vector<std::byte>> ReadSync(ServeCluster& cluster, Client* client,
                                        uint64_t handle, uint64_t offset, uint64_t length) {
  std::optional<Result<std::vector<std::byte>>> got;
  client->Read(handle, offset, length, [&](Result<std::vector<std::byte>> r) {
    got = std::move(r);
  });
  RETURN_IF_ERROR(cluster.Settle());
  if (!got.has_value()) {
    return IoError("read never completed");
  }
  return std::move(*got);
}

Status WriteSync(ServeCluster& cluster, Client* client, uint64_t handle, uint64_t offset,
                 std::vector<std::byte> data) {
  std::optional<Status> got;
  client->Write(handle, offset, std::move(data), [&](Status st) { got = st; });
  RETURN_IF_ERROR(cluster.Settle());
  if (!got.has_value()) {
    return IoError("write never completed");
  }
  return *got;
}

Status CommitSync(ServeCluster& cluster, Client* client) {
  std::optional<Status> got;
  client->Commit([&](Status st) { got = st; });
  RETURN_IF_ERROR(cluster.Settle());
  if (!got.has_value()) {
    return IoError("commit never completed");
  }
  return *got;
}

TEST(ServeCrashTest, DirtyBlocksReplayAcrossServerRestart) {
  ServeClusterParams params;
  params.clients = 2;
  auto cluster = ServeCluster::Create(params);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  ServeCluster& c = **cluster;
  Client* a = c.client(0);
  Client* b = c.client(1);

  auto ha = OpenSync(c, a, "/f");
  ASSERT_TRUE(ha.ok()) << ha.status().ToString();
  const auto payload = Bytes(12000, 21);
  ASSERT_TRUE(WriteSync(c, a, *ha, 0, payload).ok());

  // The server dies with A's writes existing nowhere but A's cache (dirty)
  // — its lease table and sessions are gone; the disk is frozen as-is.
  c.CrashServer();
  ASSERT_TRUE(c.RestartServer().ok());

  // A's lease is still time-valid, so its cached read keeps serving right
  // through the outage — availability is the whole point of leases. The
  // client has no way (and no need) to know the server died yet.
  auto back = ReadSync(c, a, *ha, 0, payload.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, payload);
  EXPECT_EQ(a->server_epoch(), 1u);

  // The commit is A's first server contact: it discovers the new epoch,
  // re-opens, reclaims its still-valid write lease through the grace fence,
  // and replays the dirty blocks before making them durable.
  ASSERT_TRUE(CommitSync(c, a).ok());
  EXPECT_EQ(a->server_epoch(), 2u);
  EXPECT_GE(a->cache_stats().replays, 1u);
  auto hb = OpenSync(c, b, "/f");
  ASSERT_TRUE(hb.ok()) << hb.status().ToString();
  auto seen = ReadSync(c, b, *hb, 0, payload.size());
  ASSERT_TRUE(seen.ok()) << seen.status().ToString();
  EXPECT_EQ(*seen, payload);
  EXPECT_EQ(c.shadow().violation_count(), 0u) << c.shadow().violations()[0];
}

TEST(ServeCrashTest, CommittedDataSurvivesServerCrashByRollForward) {
  ServeClusterParams params;
  params.clients = 1;
  auto cluster = ServeCluster::Create(params);
  ASSERT_TRUE(cluster.ok());
  ServeCluster& c = **cluster;
  Client* a = c.client(0);

  auto ha = OpenSync(c, a, "/durable");
  ASSERT_TRUE(ha.ok());
  const auto payload = Bytes(20000, 33);
  ASSERT_TRUE(WriteSync(c, a, *ha, 0, payload).ok());
  ASSERT_TRUE(CommitSync(c, a).ok());

  c.CrashServer();
  ASSERT_TRUE(c.RestartServer().ok());

  // A fresh client (no cache, no lease history) reads what roll-forward
  // recovered. It parks behind the grace fence first — expiry does the rest.
  Client* fresh = c.AddClient();
  auto hf = OpenSync(c, fresh, "/durable");
  ASSERT_TRUE(hf.ok()) << hf.status().ToString();
  auto seen = ReadSync(c, fresh, *hf, 0, payload.size());
  ASSERT_TRUE(seen.ok()) << seen.status().ToString();
  EXPECT_EQ(*seen, payload);
  EXPECT_EQ(c.shadow().violation_count(), 0u) << c.shadow().violations()[0];
}

TEST(ServeCrashTest, ClientCrashFreesWriteLeaseByExpiry) {
  ServeClusterParams params;
  params.clients = 2;
  params.lease_seconds = 5.0;
  auto cluster = ServeCluster::Create(params);
  ASSERT_TRUE(cluster.ok());
  ServeCluster& c = **cluster;
  Client* a = c.client(0);
  Client* b = c.client(1);

  auto ha = OpenSync(c, a, "/f");
  ASSERT_TRUE(ha.ok());
  ASSERT_TRUE(WriteSync(c, a, *ha, 0, Bytes(4096, 1)).ok());
  const double crashed_at = c.clock()->Now();
  c.CrashClient(0);

  // B wants the write lease. The revoke to dead A is blackholed, so B can
  // proceed only when A's lease expires on the server's clock.
  auto hb = OpenSync(c, b, "/f");
  ASSERT_TRUE(hb.ok());
  const auto winner = Bytes(4096, 2);
  ASSERT_TRUE(WriteSync(c, b, *hb, 0, winner).ok());
  EXPECT_GE(c.clock()->Now(), crashed_at + params.lease_seconds)
      << "B acquired the write lease before A's could have expired";

  ASSERT_TRUE(CommitSync(c, b).ok());
  auto seen = ReadSync(c, b, *hb, 0, winner.size());
  ASSERT_TRUE(seen.ok());
  EXPECT_EQ(*seen, winner);
  EXPECT_EQ(c.shadow().violation_count(), 0u) << c.shadow().violations()[0];
}

// The acceptance sweep: enumerate server-crash disk images from a recorded
// multi-client run and prove every one recovers with no stale (lost-durable)
// or corrupt state.
TEST(ServeCrashTest, CrashImageSweepFindsNoStaleReads) {
  ServeCrashSweepParams params;
  params.load.clients = 4;
  params.load.files = 6;
  params.load.ops_per_client = 25;
  params.load.write_fraction = 0.4;
  params.load.commit_probability = 0.2;
  params.load.mean_think_seconds = 0.005;
  params.load.file_size = 32 * 1024;
  params.budget.max_boundaries = 24;
  params.budget.torn_variants = {1, 8};

  auto report = ExploreServeCrashStates(params);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->states_checked, 0u);
  EXPECT_GT(report->online_reads_checked, 0u);
  std::string detail;
  for (const std::string& v : report->violations) {
    detail += "\n  " + v;
  }
  EXPECT_TRUE(report->ok()) << report->Summary() << detail;
}

}  // namespace
}  // namespace logfs::serve
