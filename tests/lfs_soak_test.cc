// Soak tests: long-horizon simulated use with automatic cleaning,
// checkpoints, cache pressure and periodic consistency audits — the
// paper's closing remark that "the real test of a file system is its
// performance over months and years of use", compressed into simulated
// days on a small disk.
#include <gtest/gtest.h>

#include <map>

#include "src/lfs/lfs_check.h"
#include "src/util/rng.h"
#include "tests/fs_fixture.h"

namespace logfs {
namespace {

TEST(LfsSoakTest, DaysOfOfficeChurnStayConsistent) {
  // ~24 MB disk, heavy churn: the cleaner must run many times.
  LfsParams params = LfsInstance::DefaultParams();
  LfsInstance inst(24 * 2048 + 8192, params);
  Rng rng(2026);
  std::map<std::string, uint64_t> live;  // Path -> content seed.
  uint64_t counter = 0;
  double simulated_end = 0.0;

  for (int hour = 0; hour < 24; ++hour) {
    for (int op = 0; op < 60; ++op) {
      const double dice = rng.NextDouble();
      if (dice < 0.45 && !live.empty()) {
        auto it = live.begin();
        std::advance(it, rng.NextBelow(live.size()));
        auto back = inst.paths->ReadFile(it->first);
        ASSERT_TRUE(back.ok()) << it->first;
        ASSERT_EQ(*back, TestBytes(back->size(), it->second)) << it->first;
      } else if (dice < 0.65 && !live.empty()) {
        auto it = live.begin();
        std::advance(it, rng.NextBelow(live.size()));
        ASSERT_TRUE(inst.paths->Unlink(it->first).ok());
        live.erase(it);
      } else {
        const std::string path = "/soak" + std::to_string(counter % 120);
        const uint64_t seed = ++counter;
        const size_t size = 512 + rng.NextBelow(60000);
        ASSERT_TRUE(inst.paths->WriteFile(path, TestBytes(size, seed)).ok())
            << path << " at hour " << hour;
        live[path] = seed;
      }
      inst.clock->Advance(30.0 + rng.NextDouble() * 60.0);
      ASSERT_TRUE(inst.fs->Tick().ok());
    }
    // Nightly audit.
    LfsChecker checker(inst.fs.get());
    auto report = checker.Check(/*verify_data=*/false);
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(report->ok()) << "hour " << hour << ": " << report->Summary();
    simulated_end = inst.clock->Now();
  }
  // The cleaner must have actually worked for a living.
  EXPECT_GT(inst.fs->cleaner_stats().segments_cleaned, 10u);
  EXPECT_GT(inst.fs->checkpoint_count(), 20u);
  EXPECT_GT(simulated_end, 3600.0 * 20);  // At least ~20 simulated hours.
  // Every surviving file still byte-exact after the whole run.
  for (const auto& [path, seed] : live) {
    auto back = inst.paths->ReadFile(path);
    ASSERT_TRUE(back.ok()) << path;
    ASSERT_EQ(*back, TestBytes(back->size(), seed)) << path;
  }
}

TEST(LfsSoakTest, RepeatedRemountsOverALongLife) {
  // A volume that gets mounted and unmounted many times accumulates
  // checkpoints in alternating regions; every generation must mount.
  LfsInstance inst;
  Rng rng(7);
  std::map<std::string, uint64_t> live;
  for (int generation = 0; generation < 12; ++generation) {
    for (int i = 0; i < 25; ++i) {
      const std::string path = "/gen" + std::to_string(generation) + "_" + std::to_string(i);
      const uint64_t seed = generation * 100 + i;
      ASSERT_TRUE(inst.paths->WriteFile(path, TestBytes(2000 + i, seed)).ok());
      live[path] = seed;
    }
    if (generation % 3 == 2 && !live.empty()) {
      // Occasionally delete an old generation entirely.
      const std::string prefix = "/gen" + std::to_string(generation - 2) + "_";
      for (auto it = live.begin(); it != live.end();) {
        if (it->first.starts_with(prefix)) {
          ASSERT_TRUE(inst.paths->Unlink(it->first).ok());
          it = live.erase(it);
        } else {
          ++it;
        }
      }
    }
    ASSERT_TRUE(inst.Remount().ok()) << "generation " << generation;
    for (const auto& [path, seed] : live) {
      auto back = inst.paths->ReadFile(path);
      ASSERT_TRUE(back.ok()) << path << " gen " << generation;
      ASSERT_EQ(*back, TestBytes(back->size(), seed)) << path;
    }
  }
  LfsChecker checker(inst.fs.get());
  auto report = checker.Check();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

TEST(LfsSoakTest, TinyCacheSurvivesPressure) {
  // A pathologically small cache (64 blocks = 256 KB) forces constant
  // eviction-driven write-back; everything must still be correct.
  LfsFileSystem::Options options;
  options.cache_policy.capacity_blocks = 64;
  options.cache_policy.dirty_high_watermark = 16;
  LfsInstance inst(131072, LfsInstance::DefaultParams(), options);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(inst.paths->WriteFile("/p" + std::to_string(i), TestBytes(50000, i)).ok())
        << i;
  }
  for (int i = 0; i < 40; ++i) {
    auto back = inst.paths->ReadFile("/p" + std::to_string(i));
    ASSERT_TRUE(back.ok()) << i;
    ASSERT_EQ(*back, TestBytes(50000, i)) << i;
  }
  LfsChecker checker(inst.fs.get());
  auto report = checker.Check();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

}  // namespace
}  // namespace logfs
