// Segment-cleaner walkthrough (paper Sections 4.3.2-4.3.4).
//
// Fills the log with small files, deletes most of them to fragment the
// segments, then runs the cleaner and prints a segment map before and
// after: '.' clean, digits = utilization decile of a dirty segment,
// 'A' = the active segment.
//
// Run: ./build/examples/cleaner_demo
#include <iostream>

#include "src/disk/memory_disk.h"
#include "src/fsbase/path.h"
#include "src/lfs/lfs_check.h"
#include "src/lfs/lfs_file_system.h"
#include "src/sim/sim_clock.h"

namespace {

using namespace logfs;

void PrintSegmentMap(const LfsFileSystem& fs) {
  const auto& usage = fs.usage();
  const uint32_t segment_size = fs.superblock().segment_size;
  std::cout << "  segment map: ";
  for (uint32_t seg = 0; seg < fs.superblock().num_segments; ++seg) {
    const SegUsage& entry = usage.Get(seg);
    char symbol = '.';
    if (entry.state == SegState::kActive) {
      symbol = 'A';
    } else if (entry.state != SegState::kClean) {
      const int decile =
          static_cast<int>(10.0 * entry.live_bytes / static_cast<double>(segment_size));
      symbol = static_cast<char>('0' + std::min(decile, 9));
    }
    std::cout << symbol;
  }
  std::cout << "\n  clean=" << fs.CleanSegmentCount() << " live="
            << fs.TotalLiveBytes() / 1024 << " KB\n";
}

int Run() {
  SimClock clock;
  MemoryDisk disk(131072, &clock);  // 64 MB => ~60 segments.
  LfsParams params;
  params.max_inodes = 8192;
  if (!LfsFileSystem::Format(&disk, params).ok()) {
    return 1;
  }
  LfsFileSystem::Options options;
  options.auto_clean = false;  // We drive the cleaner by hand.
  auto mounted = LfsFileSystem::Mount(&disk, &clock, nullptr, options);
  if (!mounted.ok()) {
    return 1;
  }
  LfsFileSystem& fs = **mounted;
  PathFs paths(&fs);

  std::cout << "--- filling the log with 6000 x 4 KB files ---\n";
  std::vector<std::byte> payload(4096, std::byte{0x42});
  for (int d = 0; d < 20; ++d) {
    (void)paths.Mkdir("/d" + std::to_string(d));
  }
  for (int i = 0; i < 6000; ++i) {
    if (!paths.WriteFile("/d" + std::to_string(i % 20) + "/f" + std::to_string(i), payload)
             .ok()) {
      std::cerr << "fill failed at " << i << "\n";
      return 1;
    }
    if (i % 500 == 499) {
      (void)fs.Sync();
    }
  }
  (void)fs.Sync();
  PrintSegmentMap(fs);

  std::cout << "\n--- deleting 75% of the files (segments fragment) ---\n";
  for (int i = 0; i < 6000; ++i) {
    if (i % 4 != 0) {
      (void)paths.Unlink("/d" + std::to_string(i % 20) + "/f" + std::to_string(i));
    }
  }
  (void)fs.Sync();
  PrintSegmentMap(fs);

  std::cout << "\n--- running the cleaner (greedy victim selection) ---\n";
  // Snapshot the fragmented victims first: cleaning itself fills fresh
  // segments with the compacted survivors, and re-cleaning those would
  // loop forever.
  std::vector<uint32_t> victims;
  for (uint32_t seg = 0; seg < fs.superblock().num_segments; ++seg) {
    if (fs.usage().Get(seg).state == SegState::kDirty) {
      victims.push_back(seg);
    }
  }
  const double t0 = clock.Now();
  int rounds = 0;
  for (size_t i = 0; i < victims.size(); i += 8) {
    std::vector<uint32_t> batch(victims.begin() + i,
                                victims.begin() + std::min(victims.size(), i + 8));
    auto cleaned = fs.CleanTheseSegments(batch);
    if (!cleaned.ok()) {
      std::cerr << "cleaning failed: " << cleaned.status().ToString() << "\n";
      return 1;
    }
    ++rounds;
  }
  PrintSegmentMap(fs);
  const auto& stats = fs.cleaner_stats();
  std::cout << "  cleaner: " << stats.segments_cleaned << " segments reclaimed in " << rounds
            << " passes, " << stats.live_blocks_copied << " live blocks copied, "
            << clock.Now() - t0 << " simulated seconds\n";

  std::cout << "\n--- every surviving file is intact ---\n";
  int checked = 0;
  for (int i = 0; i < 6000; i += 4) {
    auto back = paths.ReadFile("/d" + std::to_string(i % 20) + "/f" + std::to_string(i));
    if (!back.ok() || back->size() != payload.size()) {
      std::cerr << "file " << i << " damaged!\n";
      return 1;
    }
    ++checked;
  }
  std::cout << "  verified " << checked << " surviving files\n";
  LfsChecker checker(&fs);
  auto report = checker.Check();
  std::cout << "  consistency: " << (report.ok() ? report->Summary() : "check failed") << "\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
