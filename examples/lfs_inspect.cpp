// lfs_inspect: a debugfs-style dump of an LFS volume's on-disk structures —
// superblock, both checkpoint regions, the segment map, inode-map summary,
// and a log walk that decodes every valid partial segment's summary.
//
// The tool builds a demonstration volume (some files, a fragmentation +
// cleaning episode, a couple of checkpoints) and then inspects it, so the
// dump shows every structure in a realistic state. Point of the exercise:
// everything printed is decoded from raw device sectors through the same
// codecs the file system uses.
//
// Run: ./build/examples/lfs_inspect            raw structure dump (default)
//      ./build/examples/lfs_inspect metrics    registry snapshot + write cost
//      ./build/examples/lfs_inspect trace      Chrome trace_event JSON
//      ./build/examples/lfs_inspect scrub      corrupt a live block, scrub it
//      ./build/examples/lfs_inspect top        live counter rates from telemetry
//      ./build/examples/lfs_inspect heatmap    segment utilization x age grid
//      ./build/examples/lfs_inspect blackbox   recover the telemetry ring from
//                                              the raw image, mount not needed
//      ./build/examples/lfs_inspect serve      lease table, parked queue, and
//                                              client caches of a live cluster
//      ./build/examples/lfs_inspect slo        per-op latency percentiles and
//                                              critical-path class totals of a
//                                              traced lossy-cluster run
//      ./build/examples/lfs_inspect trace-tree [id]
//                                              one request's span tree with its
//                                              8-class latency attribution
//                                              (default: the slowest request)
//      ./build/examples/lfs_inspect intents    cross-shard intent log: pending
//                                              and retired records, then the
//                                              reconciliation verdicts after a
//                                              simulated crash + remount
//      ./build/examples/lfs_inspect check [--repair]
//                                              global namespace check against
//                                              seeded pre-intent-log damage;
//                                              exits nonzero on damage, zero
//                                              after --repair fixes it
//      ./build/examples/lfs_inspect iostat     per-source write attribution and
//                                              the exact-sum invariant check
//      ./build/examples/lfs_inspect segstat    lifecycle counters + utilization
//                                              decile distribution (Fig. 3)
//      ./build/examples/lfs_inspect heat       per-segment age / overwrite EWMA
//      ./build/examples/lfs_inspect save <f>   write the demo image to a file
//                                              (blackbox <f> reads it back)
//      ./build/examples/lfs_inspect help       verb summary; unknown verbs and
//                                              missing operands exit nonzero
#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <map>
#include <set>
#include <sstream>

#include "src/disk/memory_disk.h"
#include "src/fsbase/path.h"
#include "src/lfs/lfs_blackbox.h"
#include "src/obs/critical_path.h"
#include "src/lfs/lfs_file_system.h"
#include "src/lfs/lfs_segment.h"
#include "src/lfs/sharded_lfs.h"
#include "src/obs/metrics.h"
#include "src/obs/sampler.h"
#include "src/obs/space_observatory.h"
#include "src/obs/tracer.h"
#include "src/serve/cluster.h"
#include "src/serve/driver.h"
#include "src/sim/sim_clock.h"
#include "src/workload/report.h"
#include "src/workload/serve_load.h"

namespace {

using namespace logfs;

const char* KindName(BlockKind kind) {
  switch (kind) {
    case BlockKind::kData:
      return "data";
    case BlockKind::kIndirect:
      return "indirect";
    case BlockKind::kInodeBlock:
      return "inodes";
    case BlockKind::kImap:
      return "imap";
    case BlockKind::kSegUsage:
      return "usage";
    case BlockKind::kMetaLog:
      return "metalog";
  }
  return "?";
}

int DumpSuperblock(MemoryDisk& disk, LfsSuperblock* sb_out) {
  std::vector<std::byte> block(4096);
  if (!disk.ReadSectors(0, block).ok()) {
    return 1;
  }
  auto sb = DecodeLfsSuperblock(block);
  if (!sb.ok()) {
    std::cerr << "superblock: " << sb.status().ToString() << "\n";
    return 1;
  }
  std::cout << "superblock:\n"
            << "  block size            " << sb->block_size << " B\n"
            << "  segment size          " << sb->segment_size << " B ("
            << sb->BlocksPerSegment() << " blocks)\n"
            << "  segments              " << sb->num_segments << "\n"
            << "  max inodes            " << sb->max_inodes << "\n"
            << "  checkpoint region     " << sb->checkpoint_region_blocks << " blocks x2\n"
            << "  first segment sector  " << sb->first_segment_sector << "\n"
            << "  cleaning thresholds   start<" << sb->clean_start_segments << " stop>="
            << sb->clean_stop_segments << " reserve=" << sb->reserved_segments << "\n";
  *sb_out = *sb;
  return 0;
}

void DumpCheckpoints(MemoryDisk& disk, const LfsSuperblock& sb) {
  std::vector<std::byte> region(static_cast<size_t>(sb.checkpoint_region_blocks) *
                                sb.block_size);
  for (int r = 0; r < 2; ++r) {
    const uint64_t sector =
        (1ull + static_cast<uint64_t>(r) * sb.checkpoint_region_blocks) * sb.SectorsPerBlock();
    std::cout << "checkpoint region " << (r == 0 ? "A" : "B") << " @ sector " << sector
              << ": ";
    if (!disk.ReadSectors(sector, region).ok()) {
      std::cout << "unreadable\n";
      continue;
    }
    auto ckpt = DecodeCheckpoint(region);
    if (!ckpt.ok()) {
      std::cout << "invalid (" << ckpt.status().message() << ")\n";
      continue;
    }
    int written_imap = 0;
    for (DiskAddr addr : ckpt->imap_block_addrs) {
      written_imap += addr != kNoAddr ? 1 : 0;
    }
    std::cout << "seq=" << ckpt->sequence << " t=" << std::fixed << std::setprecision(2)
              << ckpt->timestamp << "s tail=seg" << ckpt->tail_segment << "+"
              << ckpt->tail_offset << " log_seq=" << ckpt->next_log_seq << " live="
              << ckpt->total_live_bytes / 1024 << "KB imap_blocks=" << written_imap << "/"
              << ckpt->imap_block_addrs.size() << "\n";
  }
}

void DumpSegments(const LfsFileSystem& fs) {
  std::cout
      << "segment map ('.'=clean, digit=live decile, A=active, p=pending, Q=quarantined):\n  ";
  const auto& usage = fs.usage();
  for (uint32_t seg = 0; seg < fs.superblock().num_segments; ++seg) {
    const SegUsage& entry = usage.Get(seg);
    char symbol = '.';
    if (entry.state == SegState::kActive) {
      symbol = 'A';
    } else if (entry.state == SegState::kCleanPending) {
      symbol = 'p';
    } else if (entry.state == SegState::kQuarantined) {
      symbol = 'Q';
    } else if (entry.state == SegState::kDirty) {
      const int decile = static_cast<int>(10.0 * entry.live_bytes /
                                          static_cast<double>(fs.superblock().segment_size));
      symbol = static_cast<char>('0' + std::min(decile, 9));
    }
    std::cout << symbol;
    if (seg % 64 == 63) {
      std::cout << "\n  ";
    }
  }
  std::cout << "\n";
}

int WalkLog(MemoryDisk& disk, const LfsSuperblock& sb) {
  std::cout << "log walk (valid partial segments, decoded from raw sectors):\n";
  TablePrinter table({"segment", "offset", "seq", "blocks", "contents"});
  std::vector<std::byte> summary_block(sb.block_size);
  int partials = 0;
  for (uint32_t seg = 0; seg < sb.num_segments; ++seg) {
    uint32_t offset = 0;
    while (offset + 1 < sb.BlocksPerSegment()) {
      if (!disk.ReadSectors(sb.SegmentBlockSector(seg, offset), summary_block).ok()) {
        break;
      }
      auto peek = PeekSummary(summary_block, sb.block_size);
      if (!peek.ok() || offset + 1 + peek->nblocks > sb.BlocksPerSegment()) {
        break;
      }
      std::vector<std::byte> content(static_cast<size_t>(peek->nblocks) * sb.block_size);
      if (!disk.ReadSectors(sb.SegmentBlockSector(seg, offset + 1), content).ok()) {
        break;
      }
      auto summary = DecodeSummary(summary_block, content);
      if (!summary.ok()) {
        break;
      }
      // Content census per kind.
      int counts[7] = {};
      for (const SummaryEntry& entry : summary->entries) {
        ++counts[static_cast<int>(entry.kind)];
      }
      std::string census;
      for (int k = 1; k <= 6; ++k) {
        if (counts[k] > 0) {
          if (!census.empty()) {
            census += " ";
          }
          census += std::to_string(counts[k]) + " " + KindName(static_cast<BlockKind>(k));
        }
      }
      table.AddRow({std::to_string(seg), std::to_string(offset),
                    std::to_string(summary->seq), std::to_string(peek->nblocks), census});
      ++partials;
      offset += 1 + peek->nblocks;
      if (partials > 40) {
        table.AddRow({"...", "", "", "", "(truncated)"});
        table.Print(std::cout);
        return 0;
      }
    }
  }
  table.Print(std::cout);
  return 0;
}

// The observability verbs report on the same demonstration volume the
// structure dump inspects, so the counters line up with the structures.
// `metrics` prints the registry (and restates the cleaner's derived write
// cost next to the raw counters it came from); `trace` emits the whole
// span/event ring in Chrome trace_event JSON for about:tracing / Perfetto.
int DumpMetrics() {
  if (!obs::kMetricsEnabled) {
    std::cerr << "metrics are compiled out (built with LOGFS_METRICS=OFF)\n";
    return 1;
  }
  std::cout << obs::Registry().ToJson();
  const obs::Counter* examined =
      obs::Registry().FindCounter("logfs.cleaner.blocks_examined");
  const obs::Counter* copied =
      obs::Registry().FindCounter("logfs.cleaner.live_blocks_copied");
  const obs::Gauge* cost = obs::Registry().FindGauge("logfs.cleaner.write_cost");
  if (examined != nullptr && copied != nullptr && cost != nullptr &&
      examined->Value() > 0) {
    const double u = static_cast<double>(copied->Value()) /
                     static_cast<double>(examined->Value());
    std::cerr << "# cleaner observed u=" << std::fixed << std::setprecision(4) << u
              << ": write cost 1 + u/(1-u) + 1/(1-u) = " << std::setprecision(3)
              << cost->Value() << " (1.0 = no cleaning overhead)\n";
  }
  return 0;
}

// `top`: the flight recorder's live view. Takes one final sample, then
// renders the busiest counters — absolute value plus the rate over the last
// sampling interval — and the current gauges, all read back out of the
// delta-compressed telemetry ring rather than the registry directly.
int DumpTop(LfsFileSystem& fs, double now) {
  if (!obs::kMetricsEnabled) {
    std::cerr << "metrics are compiled out (built with LOGFS_METRICS=OFF)\n";
    return 1;
  }
  obs::TelemetrySampler& sampler = fs.telemetry();
  sampler.SampleNow(now);
  const obs::TelemetryRing ring = sampler.Ring();
  if (ring.samples.empty()) {
    std::cerr << "telemetry ring is empty\n";
    return 1;
  }
  const size_t last = ring.samples.size() - 1;
  const double t0 = ring.samples.size() > 1 ? ring.samples.front().t : ring.base_time;
  std::cout << "telemetry: " << ring.samples.size() << " retained samples ("
            << sampler.total_samples() << " total), t=[" << std::fixed
            << std::setprecision(3) << t0 << "s, " << ring.samples[last].t << "s]\n\n";

  struct Row {
    std::string name;
    uint64_t value;
    double rate;
  };
  std::vector<Row> rows;
  for (size_t c = 0; c < ring.counter_names.size(); ++c) {
    const uint64_t value = ring.CounterAt(last, c);
    if (value > 0) {
      rows.push_back({ring.counter_names[c], value, ring.RateAt(last, c)});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.rate != b.rate ? a.rate > b.rate : a.value > b.value;
  });
  TablePrinter table({"counter", "value", "rate/s (last interval)"});
  const size_t shown = std::min<size_t>(rows.size(), 20);
  for (size_t i = 0; i < shown; ++i) {
    std::ostringstream rate;
    rate << std::fixed << std::setprecision(1) << rows[i].rate;
    table.AddRow({rows[i].name, std::to_string(rows[i].value), rate.str()});
  }
  table.Print(std::cout);
  if (rows.size() > shown) {
    std::cout << "(" << rows.size() - shown << " more nonzero counters)\n";
  }

  const obs::TelemetrySample& final_sample = ring.samples[last];
  bool any_gauge = false;
  for (size_t g = 0; g < ring.gauge_names.size(); ++g) {
    if (g < final_sample.gauges.size() && !std::isnan(final_sample.gauges[g])) {
      if (!any_gauge) {
        std::cout << "\ngauges:\n";
        any_gauge = true;
      }
      std::cout << "  " << ring.gauge_names[g] << " = " << std::setprecision(4)
                << final_sample.gauges[g] << "\n";
    }
  }
  return 0;
}

// `iostat`: the space observatory's per-source write attribution (DESIGN.md
// §6j). Every acknowledged device write the volume issued is classified by
// provenance; the table restates the classes, their byte shares, and the
// derived write amplification, then re-checks the exact-sum invariant
// against the device's own transfer counters.
int DumpIoStat(const MemoryDisk& disk) {
  if (!obs::kMetricsEnabled) {
    std::cerr << "metrics are compiled out (built with LOGFS_METRICS=OFF)\n";
    return 1;
  }
  const obs::IoAttribution attr = obs::AttributionSnapshot();
  TablePrinter table({"source", "writes", "bytes", "byte share"});
  for (size_t i = 0; i < obs::kIoSourceCount; ++i) {
    const double share =
        attr.total_bytes > 0
            ? 100.0 * static_cast<double>(attr.bytes[i]) / static_cast<double>(attr.total_bytes)
            : 0.0;
    table.AddRow({std::string(obs::IoSourceName(static_cast<obs::IoSource>(i))),
                  std::to_string(attr.writes[i]), std::to_string(attr.bytes[i]),
                  TablePrinter::Fixed(share, 1) + "%"});
  }
  table.AddRow({"total", std::to_string(attr.total_writes), std::to_string(attr.total_bytes),
                "100.0%"});
  table.Print(std::cout);
  std::cout << "\nwrite amplification (total bytes / fg_data bytes): "
            << TablePrinter::Fixed(attr.write_amplification, 3) << "\n";
  const DiskStats& stats = disk.stats();
  const uint64_t device_bytes = stats.sectors_written * kSectorSize;
  std::cout << "exact-sum invariant: attributed " << attr.total_bytes << " bytes / "
            << attr.total_writes << " ops vs device " << device_bytes << " bytes / "
            << stats.write_ops << " ops — ";
  if (attr.total_bytes == device_bytes && attr.total_writes == stats.write_ops) {
    std::cout << "holds\n";
    return 0;
  }
  std::cout << "VIOLATED\n";
  return 1;
}

// `segstat`: segment lifecycle counters plus the live utilization
// distribution (the paper's Fig. 3 as decile gauges).
int DumpSegStat(LfsFileSystem& fs) {
  if (!obs::kMetricsEnabled) {
    std::cerr << "metrics are compiled out (built with LOGFS_METRICS=OFF)\n";
    return 1;
  }
  std::cout << "lifecycle events:\n";
  for (size_t i = 0; i < obs::kSegLifecycleCount; ++i) {
    const std::string name(obs::SegLifecycleName(static_cast<obs::SegLifecycle>(i)));
    const obs::Counter* c = obs::Registry().FindCounter("logfs.seg.lifecycle." + name);
    std::cout << "  " << std::left << std::setw(12) << name
              << (c != nullptr ? c->Value() : 0) << "\n";
  }
  std::vector<double> utils;
  fs.CollectSegmentUtilization(&utils);
  obs::PublishUtilization(utils);
  const obs::Gauge* segments = obs::Registry().FindGauge("logfs.seg.util.segments");
  const obs::Gauge* mean = obs::Registry().FindGauge("logfs.seg.util.mean");
  const double population = segments != nullptr ? segments->Value() : 0.0;
  std::cout << "\nutilization distribution (" << static_cast<uint64_t>(population)
            << " occupied segments, mean u="
            << TablePrinter::Fixed(mean != nullptr ? mean->Value() : 0.0, 3) << "):\n";
  for (size_t b = 0; b < obs::kUtilBuckets; ++b) {
    const obs::Gauge* g =
        obs::Registry().FindGauge("logfs.seg.util.bucket" + std::to_string(b));
    const double count = g != nullptr ? g->Value() : 0.0;
    std::cout << "  [" << TablePrinter::Fixed(0.1 * static_cast<double>(b), 1) << ","
              << TablePrinter::Fixed(0.1 * static_cast<double>(b + 1), 1) << ") "
              << std::setw(4) << static_cast<uint64_t>(count) << "  "
              << std::string(static_cast<size_t>(
                     population > 0 ? 50.0 * count / population : 0.0), '#')
              << "\n";
  }
  return 0;
}

// `heat`: per-segment overwrite-interval EWMA maintained by the usage table.
// Smaller intervals = hotter data; the cleaner's cost-benefit policy wants
// exactly this signal (cold segments are worth cleaning at higher u).
int DumpHeat(LfsFileSystem& fs, double now) {
  if (!obs::kMetricsEnabled) {
    std::cerr << "metrics are compiled out (built with LOGFS_METRICS=OFF)\n";
    return 1;
  }
  const LfsSuperblock& sb = fs.superblock();
  const double capacity = static_cast<double>(sb.BlocksPerSegment()) * sb.block_size;
  TablePrinter table({"segment", "state", "util", "age (s)", "heat ewma (s)"});
  uint32_t shown = 0;
  for (uint32_t seg = 0; seg < sb.num_segments && shown < 40; ++seg) {
    const SegUsage& u = fs.usage().Get(seg);
    if (u.state == SegState::kClean) {
      continue;
    }
    const char* state = u.state == SegState::kActive        ? "active"
                        : u.state == SegState::kDirty       ? "dirty"
                        : u.state == SegState::kCleanPending ? "pending"
                                                             : "quarantined";
    table.AddRow({std::to_string(seg), state,
                  TablePrinter::Fixed(static_cast<double>(u.live_bytes) / capacity, 3),
                  u.allocated_at > 0.0 ? TablePrinter::Fixed(now - u.allocated_at, 3) : "-",
                  u.heat_interval_ewma > 0.0 ? TablePrinter::Fixed(u.heat_interval_ewma, 6)
                                             : "-"});
    ++shown;
  }
  table.Print(std::cout);
  std::cout << "\n('-' = never overwritten since allocation: cold or freshly"
               " written data)\n";
  return 0;
}

// Demonstrates the media-fault machinery end to end: finds a live data
// block by decoding raw summaries (newest log copy whose inode-map version
// is current), flips one byte of it on the raw medium, and runs a full
// scrub pass. The scrubber must detect the corruption, quarantine the
// segment, and salvage the still-verifiable live blocks to new homes.
int RunScrub(MemoryDisk& disk, LfsFileSystem& fs, const LfsSuperblock& sb) {
  struct Candidate {
    uint64_t seq = 0;
    DiskAddr addr = kNoAddr;
  };
  std::map<std::pair<uint32_t, int64_t>, Candidate> newest;
  std::vector<std::byte> summary_block(sb.block_size);
  for (uint32_t seg = 0; seg < sb.num_segments; ++seg) {
    uint32_t offset = 0;
    while (offset + 1 < sb.BlocksPerSegment()) {
      if (!disk.ReadSectors(sb.SegmentBlockSector(seg, offset), summary_block).ok()) {
        break;
      }
      auto peek = PeekSummary(summary_block, sb.block_size);
      if (!peek.ok() || offset + 1 + peek->nblocks > sb.BlocksPerSegment()) {
        break;
      }
      std::vector<std::byte> content(static_cast<size_t>(peek->nblocks) * sb.block_size);
      if (!disk.ReadSectors(sb.SegmentBlockSector(seg, offset + 1), content).ok()) {
        break;
      }
      auto summary = DecodeSummary(summary_block, content);
      if (summary.ok()) {
        for (size_t i = 0; i < summary->entries.size(); ++i) {
          const SummaryEntry& entry = summary->entries[i];
          if (entry.kind != BlockKind::kData || !fs.imap().IsValid(entry.ino)) {
            continue;
          }
          const ImapEntry& map_entry = fs.imap().Get(entry.ino);
          if (!map_entry.allocated || map_entry.version != entry.version) {
            continue;
          }
          Candidate& candidate = newest[{entry.ino, entry.offset}];
          if (summary->seq >= candidate.seq) {
            candidate.seq = summary->seq;
            candidate.addr =
                sb.SegmentBlockSector(seg, offset + 1 + static_cast<uint32_t>(i));
          }
        }
      }
      offset += 1 + peek->nblocks;
    }
  }
  if (newest.empty()) {
    std::cerr << "no live data block found to corrupt\n";
    return 1;
  }
  const Candidate victim = newest.begin()->second;
  const uint32_t victim_seg = sb.SegmentOfSector(victim.addr);
  std::cout << "flipping one byte of live data at sector " << victim.addr << " (segment "
            << victim_seg << ")\n\n";
  disk.MutableRawImage()[victim.addr * kSectorSize + 100] ^= std::byte{0xFF};

  auto report = fs.Scrub(sb.num_segments);
  if (!report.ok()) {
    std::cerr << "scrub failed: " << report.status().ToString() << "\n";
    return 1;
  }
  std::cout << "scrub report:\n"
            << "  segments scanned      " << report->segments_scanned << "\n"
            << "  partials verified     " << report->partials_verified << "\n"
            << "  blocks verified       " << report->blocks_verified << "\n"
            << "  checksum failures     " << report->checksum_failures << "\n"
            << "  media errors          " << report->media_errors << "\n"
            << "  segments quarantined  " << report->segments_quarantined << "\n"
            << "  blocks salvaged       " << report->blocks_salvaged << "\n\n";
  DumpSegments(fs);
  std::cout << "\nquarantined segments now: " << fs.QuarantinedSegmentCount() << "\n";
  return report->segments_quarantined > 0 ? 0 : 1;
}

// `heatmap`: the cleaner's cost-benefit picture. Buckets every dirty segment
// by utilization decile (columns) and write age (rows, newest first, age
// measured in log sequence numbers via SegUsage::last_write_seq). Greedy
// picks the leftmost column; the paper's cost-benefit policy would prefer
// the bottom-left corner (cold AND empty).
int DumpHeatmap(const LfsFileSystem& fs) {
  const LfsSuperblock& sb = fs.superblock();
  struct SegInfo {
    double u = 0.0;
    uint64_t seq = 0;
  };
  std::vector<SegInfo> dirty;
  uint64_t min_seq = UINT64_MAX, max_seq = 0;
  for (uint32_t seg = 0; seg < sb.num_segments; ++seg) {
    const SegUsage& entry = fs.usage().Get(seg);
    if (entry.state != SegState::kDirty && entry.state != SegState::kCleanPending) {
      continue;
    }
    SegInfo info;
    info.u = static_cast<double>(entry.live_bytes) / static_cast<double>(sb.segment_size);
    info.seq = entry.last_write_seq;
    min_seq = std::min(min_seq, info.seq);
    max_seq = std::max(max_seq, info.seq);
    dirty.push_back(info);
  }
  if (dirty.empty()) {
    std::cout << "no dirty segments — nothing to map\n";
    return 0;
  }

  constexpr int kAgeRows = 5;
  int counts[kAgeRows][10] = {};
  for (const SegInfo& info : dirty) {
    const double age_frac =
        max_seq == min_seq
            ? 0.0
            : static_cast<double>(max_seq - info.seq) / static_cast<double>(max_seq - min_seq);
    const int row = std::min(kAgeRows - 1, static_cast<int>(age_frac * kAgeRows));
    const int col = std::min(9, static_cast<int>(info.u * 10.0));
    ++counts[row][col];
  }

  std::cout << "segment heatmap: " << dirty.size()
            << " dirty segments, rows = write age (log seq " << max_seq << " down to "
            << min_seq << "), cols = utilization decile\n\n";
  std::cout << "            u: 0    1    2    3    4    5    6    7    8    9\n";
  const char* labels[kAgeRows] = {"newest ", "       ", "       ", "       ", "oldest "};
  for (int row = 0; row < kAgeRows; ++row) {
    std::cout << "  " << labels[row] << "    ";
    for (int col = 0; col < 10; ++col) {
      if (counts[row][col] == 0) {
        std::cout << "   . ";
      } else {
        std::cout << std::setw(4) << counts[row][col] << " ";
      }
    }
    std::cout << "\n";
  }
  std::cout << "\n(greedy cleans the leftmost column; cost-benefit would favour"
               " the lower-left corner)\n";
  return 0;
}

// `blackbox`: crash forensics. Reads the telemetry ring back out of the raw
// image bytes alone — no mount, no checkpoint decode required — exactly what
// a postmortem of a corrupted volume would do, then replays the recovered
// samples for the busiest counters.
int DumpBlackBox(std::span<std::byte> image) {
  if (!obs::kMetricsEnabled) {
    std::cerr << "metrics are compiled out (built with LOGFS_METRICS=OFF); "
                 "no black box is embedded\n";
    return 1;
  }
  auto recovered = RecoverBlackBoxFromImage(image);
  if (!recovered.ok()) {
    std::cerr << "black box unrecoverable: " << recovered.status().ToString() << "\n";
    return 1;
  }
  const obs::TelemetryRing& ring = recovered->ring;
  std::cout << "black box recovered from checkpoint region "
            << (recovered->region == 0 ? "A" : "B") << ": ring seq=" << ring.seq << ", "
            << ring.samples.size() << " samples, " << ring.counter_names.size()
            << " counters, " << ring.gauge_names.size() << " gauges, "
            << ring.hist_names.size() << " histograms\n\n";
  if (ring.samples.empty()) {
    std::cout << "(ring is empty — volume crashed before its first sample)\n";
    return 0;
  }

  // Replay the ring for the counters with the largest final values.
  const size_t last = ring.samples.size() - 1;
  std::vector<size_t> order(ring.counter_names.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return ring.CounterAt(last, a) > ring.CounterAt(last, b);
  });
  const size_t ncols = std::min<size_t>(order.size(), 4);
  std::vector<std::string> header = {"sample", "t (s)"};
  for (size_t i = 0; i < ncols; ++i) {
    header.push_back(ring.counter_names[order[i]]);
  }
  TablePrinter table(header);
  const size_t first_shown = ring.samples.size() > 12 ? ring.samples.size() - 12 : 0;
  if (first_shown > 0) {
    std::vector<std::string> ellipsis(header.size(), "");
    ellipsis[0] = "...";
    table.AddRow(ellipsis);
  }
  for (size_t s = first_shown; s < ring.samples.size(); ++s) {
    std::ostringstream t;
    t << std::fixed << std::setprecision(3) << ring.samples[s].t;
    std::vector<std::string> row = {std::to_string(s), t.str()};
    for (size_t i = 0; i < ncols; ++i) {
      row.push_back(std::to_string(ring.CounterAt(s, order[i])));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  return 0;
}

// `serve`: stands up a small lease-based file-service cluster, walks it into
// an interesting state (a writer crashes holding the write lease; the expiry
// backstop reclaims it; then a Zipf shared load runs), and dumps every
// introspection surface along the way — the server's lease table and parked
// queue, per-session RPC state, and each client's handle and cache view.
int RunServe() {
  using namespace logfs::serve;
  ServeClusterParams params;
  params.clients = 6;
  auto cluster = ServeCluster::Create(params);
  if (!cluster.ok()) {
    std::cerr << "cluster create failed: " << cluster.status().ToString() << "\n";
    return 1;
  }
  ServeCluster& c = **cluster;

  auto open_sync = [&c](Client* client, const std::string& path) -> uint64_t {
    uint64_t handle = 0;
    client->Open(path, [&](Result<uint64_t> r) { handle = r.ok() ? *r : 0; });
    (void)c.Settle();
    return handle;
  };
  auto dump_leases = [&c]() {
    TablePrinter table({"fh", "path", "client", "kind", "expires_at", "recalled"});
    const auto& paths = c.server()->handle_paths();
    for (const auto& entry : c.server()->leases().Dump(c.clock()->Now())) {
      auto p = paths.find(entry.fh);
      table.AddRow({TablePrinter::Int(entry.fh),
                    p == paths.end() ? "?" : p->second,
                    TablePrinter::Int(entry.client),
                    LeaseKindName(entry.record.kind),
                    TablePrinter::Fixed(entry.record.expires_at, 3),
                    entry.record.recall_posted ? "yes" : "no"});
    }
    table.Print(std::cout);
  };
  auto dump_parked = [&c]() {
    TablePrinter table({"client", "op", "fh", "want", "since"});
    for (const auto& p : c.server()->DumpParked()) {
      table.AddRow({TablePrinter::Int(p.client), OpKindName(p.op),
                    TablePrinter::Int(p.fh), LeaseKindName(p.want),
                    TablePrinter::Fixed(p.since, 3)});
    }
    table.Print(std::cout);
  };

  {
    PathFs pathfs(c.fs());
    (void)pathfs.MkdirAll("/shared");  // Open auto-creates files, not parents.
  }

  // Stage 1: client 5 takes the write lease on the hot file (its write lands
  // only in its private cache), then dies without a word. Client 0's write
  // must recall a lease whose holder will never answer.
  Client* doomed = c.client(5);
  const uint64_t hd = open_sync(doomed, "/shared/hot");
  doomed->Write(hd, 0, std::vector<std::byte>(4096, std::byte{0x55}), [](Status) {});
  (void)c.Settle();
  c.CrashClient(5);

  Client* writer = c.client(0);
  const uint64_t hw = open_sync(writer, "/shared/hot");
  bool wrote = false;
  writer->Write(hw, 0, std::vector<std::byte>(4096, std::byte{0xAA}),
                [&wrote](Status) { wrote = true; });
  (void)c.RunFor(2.0);

  std::cout << "-- stage 1: writer crashed holding the write lease; revoke "
               "unanswered (t=" << TablePrinter::Fixed(c.clock()->Now(), 2)
            << "s)\n\nlease table:\n";
  dump_leases();
  std::cout << "\nparked requests (waiting on the dead holder):\n";
  dump_parked();

  // Stage 2: nothing arrives from the dead client, so the lease dies on the
  // clock and the parked write proceeds — the expiry backstop in action.
  (void)c.RunFor(params.lease_seconds + 1.0);
  (void)c.Settle();
  std::cout << "\n-- stage 2: lease expired at t="
            << TablePrinter::Fixed(c.clock()->Now(), 2)
            << "s; parked write " << (wrote ? "completed" : "still waiting")
            << "; dead client's dirty block was never written (volatile-cache "
               "contract)\n\nlease table:\n";
  dump_leases();

  // Stage 3: a Zipf-shared load across the surviving clients.
  logfs::ServeLoadParams lp;
  lp.clients = 5;
  lp.files = 24;
  lp.ops_per_client = 40;
  lp.write_fraction = 0.3;
  lp.mean_think_seconds = 0.02;
  auto stats = DriveSharedLoad(c, logfs::MakeSharedLoad(lp));
  if (!stats.ok()) {
    std::cerr << "load failed: " << stats.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\n-- stage 3: Zipf(s=" << TablePrinter::Fixed(lp.zipf_s, 1)
            << ") shared load, " << lp.clients << " clients x " << lp.ops_per_client
            << " ops: " << stats->ops_completed << " ops, " << stats->errors
            << " errors\n\nserver: epoch=" << c.server()->epoch()
            << " requests=" << c.server()->requests_received()
            << " dup_suppressed=" << c.server()->duplicates_suppressed()
            << " revokes=" << c.server()->revokes_sent()
            << " stale_writebacks=" << c.server()->stale_writebacks() << "\n";
  const LeaseManager& leases = c.server()->leases();
  std::cout << "leases: grants=" << leases.grants() << " renewals=" << leases.renewals()
            << " expiries=" << leases.expiries() << " releases=" << leases.releases()
            << " active=" << leases.ActiveCount(c.clock()->Now()) << "\n\nsessions:\n";
  {
    TablePrinter table({"client", "max_request_id", "cached_replies"});
    for (const auto& s : c.server()->DumpSessions()) {
      table.AddRow({TablePrinter::Int(s.client), TablePrinter::Int(s.max_request_id),
                    TablePrinter::Int(s.cached_replies)});
    }
    table.Print(std::cout);
  }
  std::cout << "\nclient caches:\n";
  {
    TablePrinter table({"client", "hits", "misses", "inval", "writebacks", "replays",
                        "evictions", "cached", "dirty"});
    for (size_t i = 0; i < c.num_clients(); ++i) {
      Client* cl = c.client(i);
      const Client::CacheStats cs = cl->cache_stats();
      table.AddRow({TablePrinter::Int(cl->id()) + (cl->crashed() ? " (dead)" : ""),
                    TablePrinter::Int(cs.hits), TablePrinter::Int(cs.misses),
                    TablePrinter::Int(cs.invalidations), TablePrinter::Int(cs.writebacks),
                    TablePrinter::Int(cs.replays), TablePrinter::Int(cs.evictions),
                    TablePrinter::Int(cs.cached_blocks), TablePrinter::Int(cs.dirty_blocks)});
    }
    table.Print(std::cout);
  }
  std::cout << "\nclient-observed latency (client 0):\n";
  {
    TablePrinter table({"op", "count", "mean_ms", "max_ms"});
    for (const auto& [op, lat] : c.client(0)->latencies()) {
      table.AddRow({op, TablePrinter::Int(lat.count),
                    TablePrinter::Fixed(lat.count > 0 ? 1e3 * lat.sum_seconds / lat.count : 0, 3),
                    TablePrinter::Fixed(1e3 * lat.max_seconds, 3)});
    }
    table.Print(std::cout);
  }
  std::cout << "\nshadow-model violations: " << c.shadow().violation_count() << "\n";
  return c.shadow().violation_count() == 0 ? 0 : 1;
}

// `shards`: the multi-log volume, one log at a time. Builds a 4-shard
// volume, drives four per-directory client working sets through the router
// (files colocate with their directory, so each client's data lands on one
// log), deletes enough to give the cleaners work, and then renders every
// shard's segment map and cleaner economics side by side — the per-shard
// view of exactly the gauges PublishShardMetrics exports as
// logfs.shard.<i>.*.
int RunShards() {
  SimClock clock;
  MemoryDisk disk(131072, &clock);  // 64 MB over 4 logs of 16 MB.
  LfsParams params;
  params.max_inodes = 2048;
  if (!ShardedLfs::Format(&disk, params, 4).ok()) {
    return 1;
  }
  auto fs = ShardedLfs::Mount(&disk, &clock, nullptr);
  if (!fs.ok()) {
    return 1;
  }
  PathFs paths(fs->get());
  std::vector<std::byte> payload(8192, std::byte{0x61});
  for (int c = 0; c < 4; ++c) {
    const std::string dir = "/client" + std::to_string(c);
    (void)paths.MkdirAll(dir);
    // Uneven offered load so the shard gauges tell different stories.
    for (int i = 0; i < 100 + 60 * c; ++i) {
      (void)paths.WriteFile(dir + "/f" + std::to_string(i), payload);
    }
    for (int i = 0; i < 100 + 60 * c; i += 2) {
      (void)paths.Unlink(dir + "/f" + std::to_string(i));
    }
  }
  (void)(*fs)->Sync();
  (void)(*fs)->CleanNow(4);
  (*fs)->PublishShardMetrics();

  for (uint32_t i = 0; i < (*fs)->shard_count(); ++i) {
    const LfsFileSystem& shard = *(*fs)->shard(i);
    const LfsSuperblock& sb = shard.superblock();
    const double capacity = static_cast<double>(sb.num_segments) *
                            static_cast<double>(sb.segment_size);
    const double util =
        capacity > 0.0 ? static_cast<double>(shard.TotalLiveBytes()) / capacity : 0.0;
    const LfsFileSystem::CleanerStats& cs = shard.cleaner_stats();
    const obs::Gauge* cost = obs::Registry().FindGauge(
        "logfs.shard." + std::to_string(i) + ".write_cost");
    std::cout << "shard " << i << ": " << sb.num_segments << " segments x "
              << sb.segment_size / 1024 << "KB  live=" << shard.TotalLiveBytes() / 1024
              << "KB (u=" << std::fixed << std::setprecision(3) << util << ")  clean="
              << shard.CleanSegmentCount() << "  ckpts=" << shard.checkpoint_count()
              << "\n  cleaner: passes=" << cs.passes
              << " segments_cleaned=" << cs.segments_cleaned
              << "  write_cost=" << std::setprecision(3)
              << (cost != nullptr ? cost->Value() : 0.0) << "\n";
    DumpSegments(shard);
    std::cout << "\n";
  }
  return 0;
}

const char* IntentKindName(IntentKind kind) {
  switch (kind) {
    case IntentKind::kCreate: return "create";
    case IntentKind::kLink:   return "link";
    case IntentKind::kUnlink: return "unlink";
    case IntentKind::kRmdir:  return "rmdir";
    case IntentKind::kRename: return "rename";
  }
  return "?";
}

void PrintIntentRecord(const LoadedIntent& li) {
  const IntentRecord& r = li.record;
  std::cout << "  slot " << std::setw(2) << li.slot << "  op " << std::setw(3)
            << r.op_id << "  "
            << (li.state == IntentState::kPending ? "PENDING" : "RETIRED")
            << "  " << IntentKindName(r.kind) << "  dir " << r.from_dir << "/'"
            << r.from_name << "'";
  if (r.kind == IntentKind::kRename) {
    std::cout << " -> dir " << r.to_dir << "/'" << r.to_name << "'";
  }
  std::cout << "  child " << r.child;
  if (r.victim != 0) {
    std::cout << "  victim " << r.victim;
  }
  std::cout << "\n";
}

// `intents`: the cross-shard intent log at work. Builds a 4-shard volume,
// drives cross-shard namespace ops to completion (their intents retire at
// the Sync barrier), then leaves a batch of ops applied-but-unretired,
// dumps the raw region both ways, and finally "crashes" — remounts a copy
// of the raw image — to show the mount-time reconciliation verdicts.
int RunIntents() {
  std::cout << "=== lfs_inspect intents: the cross-shard intent log ===\n\n";
  const uint64_t kSectors = 131072;
  SimClock clock;
  MemoryDisk disk(kSectors, &clock);
  LfsParams params;
  params.max_inodes = 2048;
  if (!ShardedLfs::Format(&disk, params, 4).ok()) {
    return 1;
  }
  auto fs = ShardedLfs::Mount(&disk, &clock, nullptr);
  if (!fs.ok()) {
    return 1;
  }
  const LfsSuperblock& sb = (*fs)->shard(0)->superblock();
  std::cout << "region: " << sb.intent_sectors << " sectors at sector "
            << sb.intent_start_sector << " (" << kIntentSlots << " slots x "
            << kIntentSlotBytes << " B)\n\n";

  // Round 1: cross-shard traffic that runs to durability. Directory
  // affinity means a file created in a directory lands on that directory's
  // shard, so renaming between two directories on different shards is a
  // genuine two-shard op.
  PathFs paths(fs->get());
  (void)paths.MkdirAll("/a");
  (void)paths.MkdirAll("/b");
  std::vector<std::byte> payload(4096, std::byte{0x62});
  for (int i = 0; i < 6; ++i) {
    (void)paths.WriteFile("/a/f" + std::to_string(i), payload);
  }
  auto a = paths.Resolve("/a");
  auto b = paths.Resolve("/b");
  if (!a.ok() || !b.ok()) {
    return 1;
  }
  for (int i = 0; i < 6; ++i) {
    (void)(*fs)->Rename(*a, "f" + std::to_string(i), *b, "r" + std::to_string(i));
  }
  (void)(*fs)->Sync();  // Durable horizon advances: intents retire.

  // Round 2: more cross-shard ops, NOT synced — their intents stay
  // pending on disk until the next retirement barrier.
  for (int i = 0; i < 3; ++i) {
    (void)(*fs)->Rename(*b, "r" + std::to_string(i), *a, "back" + std::to_string(i));
    (void)(*fs)->Unlink(*b, "r" + std::to_string(i + 3));
  }

  std::cout << "--- region after 6 synced renames + 6 unsynced ops ---\n";
  IntentLog log(&disk, sb.intent_start_sector, sb.intent_sectors);
  auto slots = log.LoadAll();
  if (!slots.ok()) {
    return 1;
  }
  uint32_t pending = 0;
  for (const LoadedIntent& li : *slots) {
    PrintIntentRecord(li);
    pending += li.state == IntentState::kPending ? 1 : 0;
  }
  std::cout << (*slots).size() << " decodable slots, " << pending
            << " pending (the unsynced ops; the synced round was retired at "
               "the Sync barrier)\n\n";

  // Crash now: remount a copy of the raw image. Per-shard roll-forward
  // replays what it can; the pending intents drive the cross-shard
  // reconciliation; the verdicts land in reconcile_report().
  std::cout << "--- crash + remount: mount-time reconciliation ---\n";
  SimClock clock2;
  MemoryDisk disk2(kSectors, &clock2);
  std::span<const std::byte> raw = disk.RawImage();
  std::copy(raw.begin(), raw.end(), disk2.MutableRawImage().begin());
  auto fs2 = ShardedLfs::Mount(&disk2, &clock2, nullptr);
  if (!fs2.ok()) {
    std::cerr << "remount failed: " << fs2.status().ToString() << "\n";
    return 1;
  }
  const std::optional<RepairReport>& rep = (*fs2)->reconcile_report();
  if (!rep.has_value()) {
    std::cout << "no reconciliation ran (no intent region)\n";
    return 1;
  }
  std::cout << rep->intents_settled << " intents settled, " << rep->total_edits()
            << " namespace edits\n";
  for (const std::string& action : rep->actions) {
    std::cout << "  " << action << "\n";
  }
  auto report = CheckShardedLfs(fs2->get());
  if (!report.ok()) {
    return 1;
  }
  std::cout << "post-reconcile check: " << report->Summary() << "\n";
  return report->ok() ? 0 : 1;
}

// `check [--repair]`: the global checker and the online repairer against a
// volume with seeded pre-intent-log damage (a dangling dirent, an orphan, a
// wrong nlink — exactly what a crash predating the intent log leaves).
// Exits nonzero on unreconciled damage; `--repair` fixes in place and exits
// zero once the post-repair re-check is clean.
int RunCheck(const char* arg) {
  const bool repair = arg != nullptr && std::strcmp(arg, "--repair") == 0;
  std::cout << "=== lfs_inspect check: global namespace check"
            << (repair ? " + online repair" : "") << " ===\n\n";
  SimClock clock;
  MemoryDisk disk(131072, &clock);
  LfsParams params;
  params.max_inodes = 2048;
  if (!ShardedLfs::Format(&disk, params, 4).ok()) {
    return 1;
  }
  auto fs = ShardedLfs::Mount(&disk, &clock, nullptr);
  if (!fs.ok()) {
    return 1;
  }
  PathFs paths(fs->get());
  (void)paths.MkdirAll("/docs");
  std::vector<std::byte> payload(4096, std::byte{0x63});
  for (int i = 0; i < 8; ++i) {
    (void)paths.WriteFile("/docs/f" + std::to_string(i), payload);
  }
  (void)(*fs)->Sync();

  // Seed the damage through the seam backdoor (router quiescent).
  auto dir = paths.Resolve("/docs");
  auto f0 = paths.Resolve("/docs/f0");
  if (!dir.ok() || !f0.ok()) {
    return 1;
  }
  const uint32_t n = (*fs)->shard_count();
  (void)(*fs)->shard((*fs)->ShardOf(*dir))
      ->ShardAddEntry(*dir, "dangles", *f0 + 64 * n, FileType::kRegular,
                      /*child_is_dir=*/false);
  (void)(*fs)->shard(((*fs)->ShardOf(*dir) + 1) % n)
      ->ShardAllocInode(FileType::kRegular, *dir);
  (void)(*fs)->shard((*fs)->ShardOf(*f0))->ShardSetNlink(*f0, 7);

  auto before = CheckShardedLfs(fs->get());
  if (!before.ok()) {
    return 1;
  }
  std::cout << "check: " << before->Summary() << "\n";
  if (!repair) {
    return before->ok() ? 0 : 1;
  }

  auto repaired = CheckShardedLfs(fs->get(), /*verify_data=*/true,
                                  RepairMode::kRepair);
  if (!repaired.ok()) {
    return 1;
  }
  std::cout << "\nrepair: " << repaired->repairs_applied << " edits\n";
  for (const std::string& action : repaired->repair_actions) {
    std::cout << "  " << action << "\n";
  }
  std::cout << "post-repair check: " << repaired->Summary() << "\n";
  return repaired->ok() ? 0 : 1;
}

// Shared rig for the tracing verbs: a lossy 4-client cluster under a seeded
// Zipf load, so the trees show every attribution class at once — dropped
// attempts (retransmit), recalls and fairness barriers (lease_wait), dedup
// absorption, and the LFS's own disk/cleaner/cache split.
int RunTraced(const char* verb, const char* arg) {
  if (!obs::kMetricsEnabled) {
    std::cerr << "tracing is compiled out (built with LOGFS_METRICS=OFF)\n";
    return 1;
  }
  using namespace logfs::serve;
  ServeClusterParams params;
  params.clients = 4;
  params.transport.drop_probability = 0.05;
  auto cluster = ServeCluster::Create(params);
  if (!cluster.ok()) {
    std::cerr << "cluster create failed: " << cluster.status().ToString() << "\n";
    return 1;
  }
  ServeCluster& c = **cluster;
  {
    PathFs pathfs(c.fs());
    (void)pathfs.MkdirAll("/shared");
  }
  logfs::ServeLoadParams lp;
  lp.clients = 4;
  lp.files = 8;
  lp.ops_per_client = 60;
  lp.write_fraction = 0.4;
  lp.mean_think_seconds = 0.005;
  auto stats = DriveSharedLoad(c, logfs::MakeSharedLoad(lp));
  if (!stats.ok()) {
    std::cerr << "load failed: " << stats.status().ToString() << "\n";
    return 1;
  }

  const std::vector<obs::TraceEvent> events = obs::Tracer().Events();
  const std::vector<obs::TraceTree> trees = obs::AssembleTraceTrees(events);
  obs::SloTracker slo(/*target_seconds=*/0.050);
  std::vector<obs::Breakdown> breakdowns;
  breakdowns.reserve(trees.size());
  for (const obs::TraceTree& tree : trees) {
    obs::Breakdown b = obs::AnalyzeCriticalPath(tree);
    if (b.category == "serve.op") {  // User requests only; flushes ride along.
      slo.Observe(b);
    }
    breakdowns.push_back(std::move(b));
  }
  slo.Publish();

  if (std::strcmp(verb, "slo") == 0) {
    std::cout << "traced " << trees.size() << " traces over "
              << stats->ops_completed << " completed ops ("
              << c.transport()->dropped() << " messages dropped)\n\n";
    const obs::MetricsSnapshot snap = obs::Registry().Snapshot();
    auto gauge = [&snap](const std::string& name) {
      auto it = snap.gauges.find(name);
      return it == snap.gauges.end() ? 0.0 : it->second;
    };
    auto counter = [&snap](const std::string& name) -> uint64_t {
      auto it = snap.counters.find(name);
      return it == snap.counters.end() ? 0 : it->second;
    };
    std::cout << "SLO target: " << gauge("logfs.slo.target_us") << " us\n\n";
    std::set<std::string> ops;
    for (const obs::Breakdown& b : breakdowns) {
      if (b.category == "serve.op") {
        ops.insert(b.op);
      }
    }
    TablePrinter table({"op", "count", "p50_us", "p99_us", "violations"});
    for (const std::string& op : ops) {
      const std::string prefix = "logfs.slo." + op;
      auto hist = snap.histograms.find(prefix + ".latency_us");
      const uint64_t count =
          hist == snap.histograms.end() ? 0 : hist->second.count;
      table.AddRow({op, TablePrinter::Int(count),
                    TablePrinter::Fixed(gauge(prefix + ".p50_us"), 0),
                    TablePrinter::Fixed(gauge(prefix + ".p99_us"), 0),
                    TablePrinter::Int(counter(prefix + ".violations"))});
    }
    table.Print(std::cout);
    std::cout << "\ncritical-path time by class (logfs.path.*, all ops):\n";
    TablePrinter classes({"class", "total_us", "share"});
    double class_us[obs::kPathClassCount] = {};
    double total_us = 0.0;
    for (const obs::Breakdown& b : breakdowns) {
      if (b.category != "serve.op") {
        continue;
      }
      for (size_t i = 0; i < obs::kPathClassCount; ++i) {
        class_us[i] += b.seconds[i] * 1e6;
        total_us += b.seconds[i] * 1e6;
      }
    }
    for (size_t i = 0; i < obs::kPathClassCount; ++i) {
      classes.AddRow({obs::PathClassName(static_cast<obs::PathClass>(i)),
                      TablePrinter::Fixed(class_us[i], 0),
                      TablePrinter::Fixed(
                          total_us > 0.0 ? 100.0 * class_us[i] / total_us : 0.0, 1) + "%"});
    }
    classes.Print(std::cout);
    std::cout << "\nwasted RPC attempts: "
              << counter("logfs.serve.rpc.wasted_attempts") << " of "
              << counter("logfs.serve.rpc.attempts") << " sent\n";
    return 0;
  }

  // trace-tree: one request, rendered as an indented span tree plus its
  // exact per-class attribution. Default subject: the slowest user op.
  uint64_t want_id = 0;
  if (arg != nullptr) {
    want_id = std::strtoull(arg, nullptr, 10);
  } else {
    double slowest = -1.0;
    for (const obs::Breakdown& b : breakdowns) {
      if (b.category == "serve.op" && b.total_seconds > slowest) {
        slowest = b.total_seconds;
        want_id = b.trace_id;
      }
    }
  }
  const obs::TraceTree* tree = obs::FindTree(trees, want_id);
  if (tree == nullptr) {
    std::cerr << "no trace with id " << want_id << " in the ring ("
              << trees.size() << " traces held)\n";
    return 1;
  }
  const obs::Breakdown b = obs::AnalyzeCriticalPath(*tree);
  std::cout << "trace " << b.trace_id << ": " << b.category << "/" << b.op
            << "  total=" << TablePrinter::Fixed(b.total_seconds * 1e6, 1) << "us\n\n";
  const double t0 = tree->nodes[tree->root].event.start_seconds;
  std::function<void(size_t, int)> print = [&](size_t i, int depth) {
    const obs::TraceEvent& ev = tree->nodes[i].event;
    std::cout << std::string(static_cast<size_t>(depth) * 2, ' ') << ev.category << "/"
              << ev.name << "  [" << TablePrinter::Fixed((ev.start_seconds - t0) * 1e6, 1)
              << "us +" << TablePrinter::Fixed(ev.duration_seconds * 1e6, 1) << "us]";
    for (const auto& [k, v] : ev.args) {
      std::cout << " " << k << "=" << v;
    }
    if (!ev.links.empty()) {
      std::cout << " links=";
      for (size_t l = 0; l < ev.links.size(); ++l) {
        std::cout << (l > 0 ? "," : "") << ev.links[l];
      }
    }
    std::cout << "\n";
    for (size_t child : tree->nodes[i].children) {
      print(child, depth + 1);
    }
  };
  print(tree->root, 0);
  std::cout << "\ncritical path:\n";
  for (size_t i = 0; i < obs::kPathClassCount; ++i) {
    if (b.seconds[i] > 0.0) {
      std::cout << "  " << std::setw(12) << std::left
                << obs::PathClassName(static_cast<obs::PathClass>(i))
                << TablePrinter::Fixed(b.seconds[i] * 1e6, 1) << "us ("
                << TablePrinter::Fixed(100.0 * b.seconds[i] / b.total_seconds, 1)
                << "%)\n";
    }
  }
  std::cout << "  sum " << TablePrinter::Fixed(b.Sum() * 1e6, 1) << "us vs total "
            << TablePrinter::Fixed(b.total_seconds * 1e6, 1) << "us\n";
  return 0;
}

// Every verb the tool understands, in help order. Verbs that require an
// operand say so; main() enforces it before any volume is built, so a typo
// or missing path fails fast with a nonzero exit instead of running the
// default dump.
struct VerbSpec {
  const char* name;
  const char* operand;  // nullptr = none; leading '[' marks it optional.
  const char* what;
};
constexpr VerbSpec kVerbs[] = {
    {"metrics", nullptr, "metrics registry snapshot + derived write cost"},
    {"trace", nullptr, "Chrome trace_event JSON of the span/event ring"},
    {"iostat", nullptr, "per-source write attribution + exact-sum check"},
    {"segstat", nullptr, "segment lifecycle counters + utilization deciles"},
    {"heat", nullptr, "per-segment age and overwrite-interval EWMA"},
    {"scrub", nullptr, "corrupt a live block, then scrub + salvage it"},
    {"top", nullptr, "live counter rates from the telemetry ring"},
    {"heatmap", nullptr, "dirty segments: utilization decile x write age"},
    {"blackbox", "[image-file]", "recover the telemetry ring from raw bytes"},
    {"save", "<image-file>", "write the demo volume's raw image to a file"},
    {"serve", nullptr, "lease-based file-service cluster, live"},
    {"shards", nullptr, "per-log view of the sharded volume"},
    {"slo", nullptr, "latency percentiles and path attribution"},
    {"trace-tree", "[id]", "one request's causal span tree"},
    {"intents", nullptr, "cross-shard intent log + reconciliation"},
    {"check", "[--repair]", "global namespace check (+ online repair)"},
    {"help", nullptr, "this summary"},
};

void PrintUsage(std::ostream& os) {
  os << "usage: lfs_inspect [<verb> [<operand>]]\n\n"
        "With no verb: dump the demo volume's raw on-disk structures.\n\n"
        "verbs:\n";
  for (const VerbSpec& v : kVerbs) {
    std::string head = v.name;
    if (v.operand != nullptr) {
      head += std::string(" ") + v.operand;
    }
    os << "  " << std::left << std::setw(22) << head << v.what << "\n";
  }
}

// `save <file>` / `blackbox <file>`: the demo volume's raw image on real
// disk, and forensics over such a saved image — the pair demonstrates that
// the black box needs only bytes, not a mountable volume.
int SaveImage(MemoryDisk& disk, const char* path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  const std::span<const std::byte> image = disk.MutableRawImage();
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
  if (!out.good()) {
    std::cerr << "cannot write image to '" << path << "'\n";
    return 1;
  }
  std::cout << "wrote " << image.size() << " bytes to " << path << "\n";
  return 0;
}

int Run(const char* verb, const char* arg) {
  if (verb != nullptr && std::strcmp(verb, "blackbox") == 0 && arg != nullptr) {
    // Forensics over a previously saved raw image (see `save`): the black
    // box really does need nothing but the bytes.
    std::ifstream in(arg, std::ios::binary);
    if (!in) {
      std::cerr << "cannot open image file '" << arg << "'\n";
      return 1;
    }
    std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    std::cout << "=== lfs_inspect blackbox: telemetry forensics from " << arg
              << " ===\n\n";
    return DumpBlackBox(std::as_writable_bytes(std::span<char>(raw)));
  }
  if (verb != nullptr && std::strcmp(verb, "serve") == 0) {
    std::cout << "=== lfs_inspect serve: a lease-based file-service cluster, live ===\n\n";
    return RunServe();
  }
  if (verb != nullptr && std::strcmp(verb, "shards") == 0) {
    std::cout << "=== lfs_inspect shards: per-log view of the sharded volume ===\n\n";
    return RunShards();
  }
  if (verb != nullptr && std::strcmp(verb, "intents") == 0) {
    return RunIntents();
  }
  if (verb != nullptr && std::strcmp(verb, "check") == 0) {
    return RunCheck(arg);
  }
  if (verb != nullptr && std::strcmp(verb, "slo") == 0) {
    std::cout << "=== lfs_inspect slo: latency percentiles and path attribution ===\n\n";
    return RunTraced(verb, arg);
  }
  if (verb != nullptr && std::strcmp(verb, "trace-tree") == 0) {
    std::cout << "=== lfs_inspect trace-tree: one request's causal span tree ===\n\n";
    return RunTraced(verb, arg);
  }
  // Build a demonstration volume with history: files, deletions, cleaning.
  SimClock clock;
  MemoryDisk disk(131072, &clock);
  LfsParams params;
  params.max_inodes = 2048;
  if (!LfsFileSystem::Format(&disk, params).ok()) {
    return 1;
  }
  {
    auto fs = LfsFileSystem::Mount(&disk, &clock, nullptr);
    if (!fs.ok()) {
      return 1;
    }
    PathFs paths(fs->get());
    (void)paths.MkdirAll("/projects/demo");
    std::vector<std::byte> payload(8192, std::byte{0x61});
    for (int i = 0; i < 400; ++i) {
      (void)paths.WriteFile("/projects/demo/f" + std::to_string(i), payload);
    }
    (void)(*fs)->Sync();
    for (int i = 0; i < 400; i += 2) {
      (void)paths.Unlink("/projects/demo/f" + std::to_string(i));
    }
    (void)(*fs)->Sync();
    (void)(*fs)->CleanNow(4);

    if (verb != nullptr && std::strcmp(verb, "metrics") == 0) {
      return DumpMetrics();
    }
    if (verb != nullptr && std::strcmp(verb, "trace") == 0) {
      std::cout << obs::Tracer().ToChromeTrace();
      return 0;
    }
    if (verb != nullptr && std::strcmp(verb, "scrub") == 0) {
      std::cout << "=== lfs_inspect scrub: inject silent corruption, then scrub ===\n\n";
      return RunScrub(disk, **fs, (*fs)->superblock());
    }
    if (verb != nullptr && std::strcmp(verb, "top") == 0) {
      std::cout << "=== lfs_inspect top: live counter rates from the telemetry ring ===\n\n";
      return DumpTop(**fs, clock.Now());
    }
    if (verb != nullptr && std::strcmp(verb, "heatmap") == 0) {
      std::cout << "=== lfs_inspect heatmap: cleaner's view of the segment pool ===\n\n";
      return DumpHeatmap(**fs);
    }
    if (verb != nullptr && std::strcmp(verb, "blackbox") == 0) {
      std::cout << "=== lfs_inspect blackbox: telemetry forensics from raw bytes ===\n\n";
      return DumpBlackBox(disk.MutableRawImage());
    }
    if (verb != nullptr && std::strcmp(verb, "iostat") == 0) {
      std::cout << "=== lfs_inspect iostat: per-source write attribution ===\n\n";
      return DumpIoStat(disk);
    }
    if (verb != nullptr && std::strcmp(verb, "segstat") == 0) {
      std::cout << "=== lfs_inspect segstat: lifecycle + utilization distribution ===\n\n";
      return DumpSegStat(**fs);
    }
    if (verb != nullptr && std::strcmp(verb, "heat") == 0) {
      std::cout << "=== lfs_inspect heat: overwrite-interval EWMA per segment ===\n\n";
      return DumpHeat(**fs, clock.Now());
    }
    if (verb != nullptr && std::strcmp(verb, "save") == 0) {
      return SaveImage(disk, arg);
    }

    std::cout << "=== lfs_inspect: raw on-disk structures of a live volume ===\n\n";
    LfsSuperblock sb;
    if (DumpSuperblock(disk, &sb) != 0) {
      return 1;
    }
    std::cout << "\n";
    DumpCheckpoints(disk, sb);
    std::cout << "\n";
    DumpSegments(**fs);
    std::cout << "\n";
    std::cout << "inode map: " << (*fs)->imap().allocated_count() << " allocated of "
              << (*fs)->imap().max_inodes() << ", " << (*fs)->imap().block_count()
              << " map blocks\n\n";
    WalkLog(disk, sb);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* verb = argc > 1 ? argv[1] : nullptr;
  const char* arg = argc > 2 ? argv[2] : nullptr;
  if (verb == nullptr) {
    return Run(nullptr, nullptr);  // Default: raw structure dump.
  }
  if (std::strcmp(verb, "help") == 0 || std::strcmp(verb, "-h") == 0 ||
      std::strcmp(verb, "--help") == 0) {
    PrintUsage(std::cout);
    return 0;
  }
  const VerbSpec* spec = nullptr;
  for (const VerbSpec& v : kVerbs) {
    if (std::strcmp(verb, v.name) == 0) {
      spec = &v;
      break;
    }
  }
  if (spec == nullptr) {
    std::cerr << "unknown verb '" << verb << "'\n\n";
    PrintUsage(std::cerr);
    return 2;
  }
  if (spec->operand != nullptr && spec->operand[0] == '<' && arg == nullptr) {
    std::cerr << "verb '" << verb << "' requires " << spec->operand << "\n\n";
    PrintUsage(std::cerr);
    return 2;
  }
  return Run(verb, arg);
}
