// Crash-state explorer walkthrough.
//
// Records the device write stream of a workload, enumerates candidate
// post-crash images (prefix, torn-write, and optionally reordered), remounts
// every one under roll-forward and checkpoint-only recovery, and prints a
// per-crash-point verdict table.
//
// Run: ./build/examples/crash_explorer [ops] [seed] [boundaries] [--reorder]
//      ./build/examples/crash_explorer --self-test   # break recovery, watch
//                                                    # the Oracle object
#include <cstdint>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>

#include "src/crashsim/explorer.h"
#include "src/workload/trace.h"

namespace {

using namespace logfs;

// One row per crash plan; the two mount-mode verdicts share the row.
void PrintTable(const ExploreReport& report) {
  std::cout << "\n  crash point                     roll-forward  checkpoint-only\n"
            << "  ------------------------------  ------------  ---------------\n";
  for (size_t i = 0; i < report.results.size();) {
    const CrashStateResult& first = report.results[i];
    std::string rf = "-", cp = "-";
    size_t j = i;
    for (; j < report.results.size() &&
           report.results[j].plan.Describe() == first.plan.Describe();
         ++j) {
      std::string& cell = report.results[j].roll_forward ? rf : cp;
      cell = report.results[j].verdict.ok()
                 ? "ok"
                 : "FAIL(" + std::to_string(report.results[j].verdict.violations.size()) +
                       ")";
    }
    std::cout << "  " << std::left << std::setw(30) << first.plan.Describe() << "  "
              << std::setw(12) << rf << "  " << cp << "\n";
    i = j;
  }
}

void PrintViolations(const ExploreReport& report, size_t limit) {
  size_t shown = 0;
  for (const CrashStateResult& result : report.results) {
    for (const std::string& violation : result.verdict.violations) {
      if (shown++ == limit) {
        std::cout << "  ...\n";
        return;
      }
      std::cout << "  " << result.plan.Describe()
                << (result.roll_forward ? " [roll-forward] " : " [checkpoint-only] ")
                << violation << "\n";
    }
  }
}

int Explore(int ops, uint64_t seed, size_t boundaries, bool reorder, bool self_test) {
  std::vector<TraceOp> workload = GenerateCrashTrace(ops, seed);
  ExploreBudget budget;
  budget.max_boundaries = boundaries;
  budget.reorder_within_epoch = reorder;
  ExploreRigParams rig;
  if (self_test) {
    // Deliberately weaken recovery: roll-forward swallows segment summaries
    // without validating their CRC, so a torn partial segment whose summary
    // block landed — but whose content did not — gets replayed as garbage.
    rig.mount_options.unsafe_skip_rollforward_crc = true;
    budget.torn_variants = {8};
    budget.check_checkpoint_only = false;
    std::cout << "self-test: summary-CRC validation disabled during roll-forward\n";
  }

  std::cout << "workload: " << workload.size() << " ops (seed " << seed << ")\n";
  auto report = ExploreCrashStates(workload, budget, rig);
  if (!report.ok()) {
    std::cerr << "exploration failed: " << report.status().ToString() << "\n";
    return 1;
  }
  PrintTable(*report);
  std::cout << "\n" << report->Summary() << "\n";
  if (report->failed_states > 0) {
    std::cout << "violations:\n";
    PrintViolations(*report, 10);
  }
  if (self_test) {
    // The broken build MUST fail: a clean sweep here means the explorer
    // cannot see the very bug class it exists for.
    std::cout << (report->failed_states > 0
                      ? "self-test passed: the Oracle caught the broken recovery\n"
                      : "self-test FAILED: broken recovery went unnoticed\n");
    return report->failed_states > 0 ? 0 : 1;
  }
  return report->ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int ops = 25;
  uint64_t seed = 42;
  size_t boundaries = 80;
  bool reorder = false;
  bool self_test = false;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reorder") {
      reorder = true;
    } else if (arg == "--self-test") {
      self_test = true;
    } else if (positional == 0) {
      ops = std::atoi(arg.c_str());
      ++positional;
    } else if (positional == 1) {
      seed = std::strtoull(arg.c_str(), nullptr, 10);
      ++positional;
    } else {
      boundaries = std::strtoull(arg.c_str(), nullptr, 10);
    }
  }
  return Explore(ops, seed, boundaries, reorder, self_test);
}
