// Crash-recovery walkthrough (paper Section 4.4).
//
// Demonstrates the three recovery behaviours on a fault-injected disk:
//   1. checkpoint restore — data synced before the crash survives;
//   2. roll-forward — data flushed to the log after the last checkpoint is
//      recovered from the segment summaries;
//   3. torn-write atomicity — a partial segment interrupted mid-transfer is
//      discarded as a unit (the CRC covers summary + content).
//
// Run: ./build/examples/crash_recovery
#include <cstring>
#include <iostream>

#include "src/disk/fault_disk.h"
#include "src/disk/memory_disk.h"
#include "src/fsbase/path.h"
#include "src/lfs/lfs_check.h"
#include "src/lfs/lfs_file_system.h"
#include "src/sim/sim_clock.h"

namespace {

using namespace logfs;

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> data(s.size());
  std::memcpy(data.data(), s.data(), s.size());
  return data;
}

int Run() {
  SimClock clock;
  MemoryDisk disk(131072, &clock);
  FaultInjectingDisk faulty(&disk);
  LfsParams params;
  params.max_inodes = 4096;
  if (!LfsFileSystem::Format(&disk, params).ok()) {
    return 1;
  }

  std::cout << "--- phase 1: work, checkpoint, work some more, then pull the plug ---\n";
  {
    auto fs = LfsFileSystem::Mount(&faulty, &clock, nullptr);
    if (!fs.ok()) {
      return 1;
    }
    PathFs paths(fs->get());
    (void)paths.WriteFile("/synced", Bytes("written before the checkpoint\n"));
    (void)(*fs)->Sync();  // Checkpoint: /synced is durable.
    std::cout << "  wrote /synced and checkpointed\n";

    (void)paths.WriteFile("/flushed", Bytes("flushed to the log after the checkpoint\n"));
    auto ino = paths.Resolve("/flushed");
    (void)(*fs)->Fsync(*ino);  // Partial segment only; no checkpoint.
    std::cout << "  wrote /flushed and fsynced it (no checkpoint!)\n";

    (void)paths.WriteFile("/lost", Bytes("still sitting in the file cache\n"));
    std::cout << "  wrote /lost, left it dirty in the cache\n";
    faulty.CrashNow();
    std::cout << "  *** CRASH ***\n";
  }

  std::cout << "\n--- phase 2: reboot with checkpoint-only recovery (zero recovery time) ---\n";
  faulty.Reset();
  {
    // Mount a *copy* of the crashed image: even a read-only inspection
    // mount writes a checkpoint at unmount, which would supersede the log
    // tail phase 3 wants to roll forward.
    MemoryDisk copy(disk.sector_count(), &clock);
    std::memcpy(copy.MutableRawImage().data(), disk.RawImage().data(),
                disk.RawImage().size());
    LfsFileSystem::Options options;
    options.roll_forward = false;
    auto fs = LfsFileSystem::Mount(&copy, &clock, nullptr, options);
    if (!fs.ok()) {
      return 1;
    }
    PathFs paths(fs->get());
    std::cout << "  /synced exists:  " << (paths.Exists("/synced") ? "yes" : "no") << "\n";
    std::cout << "  /flushed exists: " << (paths.Exists("/flushed") ? "yes" : "no")
              << "   (in the log, but this mode never looks past the checkpoint)\n";
    std::cout << "  /lost exists:    " << (paths.Exists("/lost") ? "yes" : "no") << "\n";
  }

  std::cout << "\n--- phase 3: reboot with roll-forward recovery ---\n";
  {
    auto fs = LfsFileSystem::Mount(&disk, &clock, nullptr);  // roll_forward = true.
    if (!fs.ok()) {
      return 1;
    }
    PathFs paths(fs->get());
    std::cout << "  rolled forward " << (*fs)->rolled_forward_partials()
              << " partial segment(s)\n";
    std::cout << "  /synced exists:  " << (paths.Exists("/synced") ? "yes" : "no") << "\n";
    std::cout << "  /flushed exists: " << (paths.Exists("/flushed") ? "yes" : "no")
              << "   (recovered from segment summaries)\n";
    std::cout << "  /lost exists:    " << (paths.Exists("/lost") ? "yes" : "no")
              << "   (never reached the disk; bounded loss, paper Section 4.4.1)\n";
    LfsChecker checker(fs->get());
    auto report = checker.Check();
    std::cout << "  consistency: " << (report.ok() ? report->Summary() : "check failed")
              << "\n";
  }

  std::cout << "\n--- phase 4: torn segment write is discarded atomically ---\n";
  faulty.Reset();
  {
    auto fs = LfsFileSystem::Mount(&faulty, &clock, nullptr);
    if (!fs.ok()) {
      return 1;
    }
    PathFs paths(fs->get());
    (void)paths.WriteFile("/torn", Bytes(std::string(50000, 'x')));
    faulty.CrashAfterWrites(0, /*torn_sectors=*/3);  // Next write: 3 sectors then death.
    (void)(*fs)->Sync();
    std::cout << "  log write torn after 3 sectors\n";
  }
  faulty.Reset();
  {
    auto fs = LfsFileSystem::Mount(&disk, &clock, nullptr);
    if (!fs.ok()) {
      return 1;
    }
    PathFs paths(fs->get());
    std::cout << "  /torn exists:    " << (paths.Exists("/torn") ? "yes" : "no")
              << "   (the CRC over the whole partial segment rejected the fragment)\n";
    LfsChecker checker(fs->get());
    auto report = checker.Check();
    std::cout << "  consistency: " << (report.ok() ? report->Summary() : "check failed")
              << "\n";
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
