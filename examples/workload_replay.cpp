// Workload replay: generate (or load) an office/engineering trace and
// replay the identical operation stream against both LFS and FFS testbeds,
// comparing elapsed simulated time and disk behaviour — the simulation
// stand-in for the paper's plan to put LFS "in continuous use by the Sprite
// user community".
//
// Run: ./build/examples/workload_replay [ops] [trace-file]
//   ops        number of synthetic operations (default 3000)
//   trace-file optional path to a trace in the src/workload/trace.h format;
//              overrides the synthetic generator.
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/workload/report.h"
#include "src/workload/testbed.h"
#include "src/workload/trace.h"

namespace {

using namespace logfs;

int Run(int argc, char** argv) {
  const int ops = argc > 1 ? std::atoi(argv[1]) : 3000;
  std::vector<TraceOp> trace;
  if (argc > 2) {
    std::ifstream file(argv[2]);
    if (!file) {
      std::cerr << "cannot open trace file " << argv[2] << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    auto parsed = ParseTrace(buffer.str());
    if (!parsed.ok()) {
      std::cerr << "trace parse error: " << parsed.status().ToString() << "\n";
      return 1;
    }
    trace = std::move(*parsed);
    std::cout << "loaded " << trace.size() << " operations from " << argv[2] << "\n";
  } else {
    trace = GenerateOfficeTrace(ops, /*seed=*/42);
    std::cout << "generated office/engineering trace: " << trace.size()
              << " operations (seed 42)\n";
  }

  struct Row {
    std::string name;
    TraceReplayResult result;
    DiskStats disk;
  };
  std::vector<Row> rows;
  for (const bool use_lfs : {true, false}) {
    auto bed = use_lfs ? MakeLfsTestbed() : MakeFfsTestbed();
    if (!bed.ok()) {
      std::cerr << "testbed setup failed\n";
      return 1;
    }
    auto result = ReplayTrace(*bed, trace);
    if (!result.ok()) {
      std::cerr << (use_lfs ? "LFS" : "FFS")
                << " replay failed: " << result.status().ToString() << "\n";
      return 1;
    }
    if (!bed->fs->Sync().ok()) {
      return 1;
    }
    rows.push_back(Row{use_lfs ? "LFS" : "FFS", *result, bed->disk->stats()});
  }

  TablePrinter table({"fs", "active s", "ops/s", "MB read", "MB written", "disk writes",
                      "sync writes", "seeks"});
  for (const Row& row : rows) {
    const double active = row.result.ActiveSeconds();
    table.AddRow({row.name, TablePrinter::Fixed(active, 1),
                  TablePrinter::Fixed(row.result.operations / active, 1),
                  TablePrinter::Fixed(row.result.bytes_read / 1048576.0, 1),
                  TablePrinter::Fixed(row.result.bytes_written / 1048576.0, 1),
                  TablePrinter::Int(row.disk.write_ops), TablePrinter::Int(row.disk.sync_writes),
                  TablePrinter::Int(row.disk.seeks)});
  }
  table.Print(std::cout);
  const double speedup = rows[1].result.ActiveSeconds() / rows[0].result.ActiveSeconds();
  std::cout << "\nLFS completed the identical operation stream "
            << TablePrinter::Fixed(speedup, 2) << "x faster than FFS.\n"
            << "Note the synchronous-write and seek counts: that is Figure 1 vs\n"
            << "Figure 2, playing out over a whole workload.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
