// Quickstart: create an LFS volume on a simulated disk, work with files
// and directories through the public API, and inspect the log.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstring>
#include <iostream>

#include "src/disk/memory_disk.h"
#include "src/fsbase/path.h"
#include "src/lfs/lfs_check.h"
#include "src/lfs/lfs_file_system.h"
#include "src/sim/cpu_model.h"
#include "src/sim/sim_clock.h"

namespace {

int Run() {
  using namespace logfs;

  // 1. Assemble a simulated machine: a clock, a 10-MIPS CPU, and a 64 MB
  //    disk with WREN IV timing (1.3 MB/s, 17.5 ms average seek).
  SimClock clock;
  CpuModel cpu(&clock, /*mips=*/10.0);
  MemoryDisk disk(/*sector_count=*/131072, &clock);

  // 2. Format and mount a log-structured file system.
  LfsParams params;            // 4 KB blocks, 1 MB segments — the paper's setup.
  params.max_inodes = 4096;
  if (Status formatted = LfsFileSystem::Format(&disk, params); !formatted.ok()) {
    std::cerr << "format failed: " << formatted.ToString() << "\n";
    return 1;
  }
  auto mounted = LfsFileSystem::Mount(&disk, &clock, &cpu);
  if (!mounted.ok()) {
    std::cerr << "mount failed: " << mounted.status().ToString() << "\n";
    return 1;
  }
  LfsFileSystem& fs = **mounted;
  PathFs paths(&fs);  // Path-string convenience layer.
  disk.ResetStats();  // Don't count format/mount traffic below.

  // 3. Create a directory tree and some files — note that none of this
  //    touches the disk yet: LFS batches everything in the file cache.
  if (!paths.MkdirAll("/projects/lfs").ok()) {
    return 1;
  }
  const std::string text = "All modifications are written to disk in large sequential "
                           "transfers that proceed at maximum disk bandwidth.\n";
  std::vector<std::byte> content(text.size());
  std::memcpy(content.data(), text.data(), text.size());
  if (!paths.WriteFile("/projects/lfs/README", content).ok()) {
    return 1;
  }
  for (int i = 0; i < 20; ++i) {
    if (!paths.WriteFile("/projects/lfs/note" + std::to_string(i), content).ok()) {
      return 1;
    }
  }
  std::cout << "created 21 files; disk writes so far: " << disk.stats().write_ops
            << " (everything is still in the cache)\n";

  // 4. sync(2): one checkpoint makes it all durable — watch the write count.
  if (!fs.Sync().ok()) {
    return 1;
  }
  std::cout << "after sync: " << disk.stats().write_ops << " disk writes, "
            << disk.stats().sectors_written / 2 << " KB written, "
            << fs.CleanSegmentCount() << "/" << fs.superblock().num_segments
            << " segments still clean\n";

  // 5. Read a file back (through the cache), list a directory, stat a file.
  auto readme = paths.ReadFile("/projects/lfs/README");
  if (!readme.ok()) {
    return 1;
  }
  std::cout << "README is " << readme->size() << " bytes\n";
  auto entries = paths.ReadDir("/projects/lfs");
  if (!entries.ok()) {
    return 1;
  }
  std::cout << "/projects/lfs has " << entries->size() << " entries (incl. . and ..)\n";
  auto stat = paths.Stat("/projects/lfs/README");
  if (!stat.ok()) {
    return 1;
  }
  std::cout << "README: ino=" << stat->ino << " size=" << stat->size
            << " nlink=" << stat->nlink << " version=" << stat->version << "\n";

  // 6. Delete files: again no synchronous I/O; the inode-map version bump
  //    marks the old blocks dead for the cleaner.
  for (int i = 0; i < 20; ++i) {
    if (!paths.Unlink("/projects/lfs/note" + std::to_string(i)).ok()) {
      return 1;
    }
  }
  if (!fs.Sync().ok()) {
    return 1;
  }

  // 7. Run the consistency checker — the librarian's fsck.
  LfsChecker checker(&fs);
  auto report = checker.Check();
  if (!report.ok()) {
    std::cerr << "check failed to run: " << report.status().ToString() << "\n";
    return 1;
  }
  std::cout << "consistency check: " << report->Summary() << "\n";
  std::cout << "simulated time elapsed: " << clock.Now() << " s\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
