#!/bin/sh
# Proves zero-cost disablement of the observability layer: configures a
# separate build tree with -DLOGFS_METRICS=OFF (src/obs compiles to no-ops,
# the registry and tracer stay empty), builds everything, and runs the full
# test suite there. obs_test's value-dependent cases skip themselves in this
# configuration; everything else must pass identically — the metrics layer
# may not change any simulated result.
#
# Usage: tools/check_metrics_off.sh [build-dir]   (default: build-nometrics)
set -e
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-nometrics}"

cmake -B "$BUILD_DIR" -S . -DLOGFS_METRICS=OFF >/dev/null
cmake --build "$BUILD_DIR" -j
(cd "$BUILD_DIR" && ctest --output-on-failure -j)

echo "LOGFS_METRICS=OFF: build + tests clean"
