#!/bin/sh
# Proves zero-cost disablement of the observability layer: configures a
# separate build tree with -DLOGFS_METRICS=OFF (src/obs compiles to no-ops,
# the registry and tracer stay empty), builds everything, and runs the full
# test suite there. obs_test's and sampler_test's value-dependent cases skip
# themselves in this configuration; everything else must pass identically —
# the metrics layer may not change any simulated result.
#
# Usage: tools/check_metrics_off.sh [build-dir]   (default: build-nometrics)
set -e
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-nometrics}"

cmake -B "$BUILD_DIR" -S . -DLOGFS_METRICS=OFF >/dev/null
cmake --build "$BUILD_DIR" -j
(cd "$BUILD_DIR" && ctest --output-on-failure -j)

# The flight-recorder additions must be total no-ops in this configuration:
# run the sampler tests explicitly (their live-value cases self-skip, the
# compiled-out behaviour cases assert the no-op contract), then prove the
# telemetry bench still runs and reports metrics_enabled=false with no
# black box embedded on disk.
(cd "$BUILD_DIR" && ctest --output-on-failure -R 'sampler_test|obs_test')
cmake --build "$BUILD_DIR" -j --target bench_telemetry >/dev/null
"$BUILD_DIR"/bench/bench_telemetry --smoke --out "$BUILD_DIR"/BENCH_PR5.nometrics.json
grep -q '"metrics_enabled": false' "$BUILD_DIR"/BENCH_PR5.nometrics.json

# The serve layer counts requests, grants, revokes, and parkings through the
# same registry; with metrics off the whole lease protocol must behave
# identically. Run its test surface plus the scaling bench in smoke mode —
# a deterministic simulation, so any behavioural drift fails loudly.
(cd "$BUILD_DIR" && ctest --output-on-failure -L serve)
cmake --build "$BUILD_DIR" -j --target bench_serve >/dev/null
"$BUILD_DIR"/bench/bench_serve --smoke --out "$BUILD_DIR"/BENCH_PR6.nometrics.json

# The tracing subsystem compiles out with the rest of src/obs: the trace-
# structure tests self-skip their span assertions (the runtime-parity case
# still runs and must hold trivially), and the attribution bench must
# complete with zero traces and report metrics_enabled=false.
(cd "$BUILD_DIR" && ctest --output-on-failure -R serve_trace_test)
cmake --build "$BUILD_DIR" -j --target bench_trace_attribution >/dev/null
"$BUILD_DIR"/bench/bench_trace_attribution --smoke --out "$BUILD_DIR"/BENCH_PR8.nometrics.json
grep -q '"metrics_enabled": false' "$BUILD_DIR"/BENCH_PR8.nometrics.json

# The cross-shard intent log counts publishes, retirements, ring-full
# drains, media aborts, and mount-time reconciliations as logfs.intent.*;
# with metrics off those compile out and the intent discipline must behave
# identically. Run its crash/fault suites explicitly, then prove the
# inspector's intents and check verbs still work: reconciliation is
# metric-free, check exits nonzero on seeded damage and zero after repair.
(cd "$BUILD_DIR" && ctest --output-on-failure -R 'sharded_intent_test|sharded_crash_test')
cmake --build "$BUILD_DIR" -j --target lfs_inspect >/dev/null
"$BUILD_DIR"/examples/lfs_inspect intents >/dev/null
if "$BUILD_DIR"/examples/lfs_inspect check >/dev/null; then
  echo "lfs_inspect check failed to flag seeded damage" >&2
  exit 1
fi
"$BUILD_DIR"/examples/lfs_inspect check --repair >/dev/null

# The space observatory (per-source write attribution, segment lifecycle /
# heat, utilization distribution) compiles out entirely: its test suite
# self-skips the value-dependent cases, no observatory symbol may survive in
# the binary, the bench must run attribution-free and report
# metrics_enabled=false, and the inspector's iostat verb must report the
# compiled-out configuration (exit 1) rather than an empty table.
(cd "$BUILD_DIR" && ctest --output-on-failure -R space_observatory_test)
cmake --build "$BUILD_DIR" -j --target bench_space_observatory >/dev/null
if nm -C "$BUILD_DIR"/bench/bench_space_observatory | grep -q 'obs::RecordWrite\|obs::AttributionSnapshot\|obs::PublishUtilization'; then
  echo "observatory symbols survived LOGFS_METRICS=OFF" >&2
  exit 1
fi
"$BUILD_DIR"/bench/bench_space_observatory --smoke --out "$BUILD_DIR"/BENCH_PR10.nometrics.json
grep -q '"metrics_enabled": false' "$BUILD_DIR"/BENCH_PR10.nometrics.json
if grep -q 'logfs\.io\.\|logfs\.seg\.' "$BUILD_DIR"/BENCH_PR10.nometrics.json; then
  echo "logfs.io.*/logfs.seg.* leaked into the OFF-mode bench report" >&2
  exit 1
fi
if "$BUILD_DIR"/examples/lfs_inspect iostat >/dev/null 2>&1; then
  echo "lfs_inspect iostat should report metrics compiled out (nonzero)" >&2
  exit 1
fi

echo "LOGFS_METRICS=OFF: build + tests clean (sampler no-op, serve + tracing + intent + observatory surfaces verified)"
