#!/bin/sh
# Proves the sharded front-end is race-free under ThreadSanitizer:
# configures a separate build tree with -DLOGFS_SANITIZE=thread, builds,
# and runs the serve/concurrent/obs suites — many OS threads driving one
# sharded mount through create/write/read/rename/unlink with the built-in
# content checker, plus the tracing structural suite (whose shard-lock
# section also spawns real threads against the tracer and registry). The
# concurrent suite includes the intent-log race case: cross-shard renames
# (publish + apply + retire on Sync/Tick) racing the ONLINE repairer
# (CheckShardedLfs in kRepair mode), which must self-serialize against the
# movers and never "repair" a mid-flight op, and the space-observatory case:
# racing shard front-ends all attributing device writes through the
# process-wide logfs.io.* counters, with the exact-sum invariant checked
# after the barrier. TSan halts on the first data
# race, so a green run is a real absence-of-races witness for every
# interleaving the suites explored.
#
# The address/undefined sweep for the single-threaded robustness surfaces
# lives in a second tree: `ctest -L "crash|fault|serve"` under
# -DLOGFS_SANITIZE=address,undefined (pass --asan to run it too). The
# crash and fault labels include the cross-shard intent matrix
# (sharded_crash_test) and the intent fault/repair suite
# (sharded_intent_test).
#
# Usage: tools/check_tsan.sh [--asan] [build-dir]   (default: build-tsan)
set -e
cd "$(dirname "$0")/.."

RUN_ASAN=0
if [ "$1" = "--asan" ]; then
  RUN_ASAN=1
  shift
fi
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DLOGFS_SANITIZE=thread >/dev/null
cmake --build "$BUILD_DIR" -j --target sharded_concurrent_test --target serve_trace_test \
  --target serve_test --target serve_crash_test --target obs_test --target sampler_test \
  --target space_observatory_test
(cd "$BUILD_DIR" && ctest --output-on-failure -L "serve|concurrent|obs")

# The scaling bench is the other genuinely multi-threaded binary; its smoke
# sweep under TSan covers the shard router + host-latency device path.
cmake --build "$BUILD_DIR" -j --target bench_shard_scaling >/dev/null
"$BUILD_DIR"/bench/bench_shard_scaling --smoke --out "$BUILD_DIR"/BENCH_PR7.tsan.json

echo "LOGFS_SANITIZE=thread: concurrent suite + scaling bench race-free"

if [ "$RUN_ASAN" = "1" ]; then
  cmake -B build-asan -S . -DLOGFS_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j
  (cd build-asan && ctest --output-on-failure -L "crash|fault|serve|concurrent|obs")
  echo "LOGFS_SANITIZE=address,undefined: crash|fault|serve|concurrent|obs sweep clean"
fi
