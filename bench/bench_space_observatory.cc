// Space-observatory bench (PR 10): where does the write bandwidth go?
//
// The paper's core claim is about bandwidth *composition* — how much of the
// disk's write throughput serves new data versus cleaning, checkpointing,
// and bookkeeping overheads as the disk fills. This bench drives the same
// volume through three workload shapes (uniform, Zipf, hot/cold) at three
// disk utilizations (70/80/90%) and reports the per-source attribution
// shares from the space observatory (DESIGN.md §6j), re-checking the
// exact-sum invariant (Σ logfs.io.<source>.bytes == DiskStats bytes) after
// every configuration. The last section times the observatory's own
// recording hot paths on the host clock, so the telemetry's cost rides in
// the same report as its product.
//
// Expected shape: the cleaner's byte share rises steeply with utilization
// (cost 1 + u/(1-u) + 1/(1-u) at victim utilization u), and rises *faster*
// under uniform churn than under hot/cold, where overwrites concentrate in
// a few segments that clean cheaply. Write amplification follows the same
// order.
#include <chrono>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "src/disk/memory_disk.h"
#include "src/fsbase/path.h"
#include "src/lfs/lfs_file_system.h"
#include "src/obs/metrics.h"
#include "src/obs/space_observatory.h"
#include "src/sim/sim_clock.h"
#include "src/workload/report.h"
#include "src/workload/serve_load.h"

namespace logfs {
namespace {

double HostNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ConfigResult {
  std::string workload;
  double target_util = 0.0;
  double measured_util = 0.0;
  bool exact_sum_ok = false;
  double write_amplification = 0.0;
  obs::IoAttribution attr;
  uint64_t segments_cleaned = 0;
  double util_mean = 0.0;
};

// One workload × utilization cell: fresh volume, fill to the target, churn
// a fixed overwrite volume with the given file-popularity shape, then read
// the attribution off the registry.
Result<ConfigResult> RunConfig(const std::string& workload, double target_util,
                               bool smoke) {
  if constexpr (obs::kMetricsEnabled) {
    obs::Registry().ResetAll();
  }
  SimClock clock;
  MemoryDisk disk(131072, &clock);  // 64 MB volume.
  LfsParams params;
  params.max_inodes = 4096;
  RETURN_IF_ERROR(LfsFileSystem::Format(&disk, params));
  ASSIGN_OR_RETURN(auto fs, LfsFileSystem::Mount(&disk, &clock, nullptr));
  PathFs paths(fs.get());
  RETURN_IF_ERROR(paths.MkdirAll("/churn").status());

  const LfsSuperblock& sb = fs->superblock();
  const double usable =
      static_cast<double>(sb.num_segments) * static_cast<double>(sb.segment_size);
  const uint32_t file_bytes = 32768;
  std::vector<std::byte> payload(file_bytes, std::byte{0x61});
  std::vector<std::byte> churn(file_bytes, std::byte{0x62});

  // Fill until live bytes reach the target. Stop early (recording what we
  // got) if the volume pushes back — at 90% the write budget is tight.
  size_t nfiles = 0;
  while (static_cast<double>(fs->TotalLiveBytes()) < target_util * usable) {
    Status wrote = paths.WriteFile("/churn/f" + std::to_string(nfiles), payload);
    if (!wrote.ok()) {
      break;
    }
    ++nfiles;
    Status ticked = fs->Tick();
    if (!ticked.ok() && ticked.code() != ErrorCode::kNoSpace) {
      return ticked;
    }
  }
  Status fill_synced = fs->Sync();
  if (!fill_synced.ok() && fill_synced.code() != ErrorCode::kNoSpace) {
    return fill_synced;
  }
  if (nfiles < 16) {
    return InvalidArgumentError("fill phase produced too few files");
  }

  // Churn: overwrite in place (no net growth) so the steady state stays at
  // the target utilization while the cleaner fights for clean segments.
  const uint64_t churn_budget = (smoke ? 4ull : 24ull) << 20;
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  ZipfSampler zipf(nfiles, 1.0);
  const size_t hot_files = nfiles / 10 + 1;
  uint64_t churned = 0;
  while (churned < churn_budget) {
    size_t idx;
    if (workload == "uniform") {
      idx = static_cast<size_t>(u01(rng) * static_cast<double>(nfiles)) % nfiles;
    } else if (workload == "zipf") {
      idx = zipf.Sample(u01(rng));
    } else {  // hotcold: 90% of writes land on 10% of the files.
      idx = u01(rng) < 0.9 ? static_cast<size_t>(u01(rng) * hot_files) % hot_files
                           : hot_files + static_cast<size_t>(
                                             u01(rng) * (nfiles - hot_files)) %
                                             (nfiles - hot_files);
    }
    // Keep a small clean reserve ahead of demand: at 90% the cleaner needs
    // headroom to relocate into, and waiting for the in-Tick trigger can
    // wedge the log ("no clean segments" with live blocks still to move).
    if (fs->CleanSegmentCount() < 4) {
      auto cleaned = fs->CleanNow(8);
      if (!cleaned.ok() || *cleaned == 0) {
        break;  // Cleaning can make no more progress: steady state reached.
      }
    }
    Status wrote = paths.WriteFile("/churn/f" + std::to_string(idx), churn);
    if (!wrote.ok()) {
      if (wrote.code() == ErrorCode::kNoSpace) {
        break;
      }
      return wrote;
    }
    churned += file_bytes;
    Status ticked = fs->Tick();
    if (!ticked.ok() && ticked.code() != ErrorCode::kNoSpace) {
      return ticked;
    }
  }
  Status synced = fs->Sync();
  if (!synced.ok() && synced.code() != ErrorCode::kNoSpace) {
    return synced;
  }

  ConfigResult out;
  out.workload = workload;
  out.target_util = target_util;
  out.measured_util = static_cast<double>(fs->TotalLiveBytes()) / usable;
  out.segments_cleaned = fs->cleaner_stats().segments_cleaned;
  out.attr = obs::AttributionSnapshot();
  out.write_amplification = out.attr.write_amplification;
  const DiskStats& stats = disk.stats();
  out.exact_sum_ok =
      !obs::kMetricsEnabled ||
      (out.attr.total_bytes == stats.sectors_written * kSectorSize &&
       out.attr.total_writes == stats.write_ops);
  if constexpr (obs::kMetricsEnabled) {
    std::vector<double> utils;
    fs->CollectSegmentUtilization(&utils);
    obs::PublishUtilization(utils);
    const obs::Gauge* mean = obs::Registry().FindGauge("logfs.seg.util.mean");
    out.util_mean = mean != nullptr ? mean->Value() : 0.0;
  }
  return out;
}

// Host-clock cost of the observatory's hot paths. Synthetic records: run
// after every config so the garbage they add to the registry is harmless.
struct SelfCost {
  double record_write_ns = 0.0;
  double snapshot_ns = 0.0;
  double publish_ns = 0.0;
};

SelfCost MeasureSelfCost(bool smoke) {
  SelfCost cost;
  if constexpr (!obs::kMetricsEnabled) {
    return cost;
  }
  const int reps = smoke ? 20000 : 200000;
  double t0 = HostNow();
  for (int i = 0; i < reps; ++i) {
    obs::RecordWrite(obs::IoSource::kForegroundData, 4096);
  }
  cost.record_write_ns = (HostNow() - t0) / reps * 1e9;
  t0 = HostNow();
  for (int i = 0; i < reps / 10; ++i) {
    (void)obs::AttributionSnapshot();
  }
  cost.snapshot_ns = (HostNow() - t0) / (reps / 10) * 1e9;
  std::vector<double> utils(128, 0.5);
  t0 = HostNow();
  for (int i = 0; i < reps / 10; ++i) {
    obs::PublishUtilization(utils);
  }
  cost.publish_ns = (HostNow() - t0) / (reps / 10) * 1e9;
  return cost;
}

int RunBench(bool smoke, const std::string& out_path) {
  std::cout << "=== Space observatory: write attribution vs workload x utilization ("
            << (smoke ? "smoke" : "full") << ") ===\n\n";
  const std::vector<std::string> workloads = {"uniform", "zipf", "hotcold"};
  const std::vector<double> utils = smoke ? std::vector<double>{0.7}
                                          : std::vector<double>{0.7, 0.8, 0.9};
  std::vector<ConfigResult> results;
  bool all_exact = true;
  TablePrinter table({"workload", "target u", "measured u", "fg_data %", "cleaner %",
                      "ckpt %", "write amp", "segs cleaned", "exact-sum"});
  for (const std::string& workload : workloads) {
    for (double u : utils) {
      auto result = RunConfig(workload, u, smoke);
      if (!result.ok()) {
        std::cerr << "config " << workload << "@" << u
                  << " failed: " << result.status().ToString() << "\n";
        return 1;
      }
      const obs::IoAttribution& a = result->attr;
      auto share = [&](obs::IoSource s) {
        return a.total_bytes > 0 ? 100.0 *
                                       static_cast<double>(
                                           a.bytes[static_cast<size_t>(s)]) /
                                       static_cast<double>(a.total_bytes)
                                 : 0.0;
      };
      table.AddRow({workload, TablePrinter::Fixed(u, 2),
                    TablePrinter::Fixed(result->measured_util, 2),
                    TablePrinter::Fixed(share(obs::IoSource::kForegroundData), 1),
                    TablePrinter::Fixed(share(obs::IoSource::kCleaner), 1),
                    TablePrinter::Fixed(share(obs::IoSource::kCheckpoint), 1),
                    TablePrinter::Fixed(result->write_amplification, 2),
                    TablePrinter::Int(result->segments_cleaned),
                    result->exact_sum_ok ? "OK" : "FAIL"});
      all_exact = all_exact && result->exact_sum_ok;
      results.push_back(std::move(*result));
    }
  }
  table.Print(std::cout);
  const SelfCost cost = MeasureSelfCost(smoke);
  std::cout << "\nobservatory self-cost: " << TablePrinter::Fixed(cost.record_write_ns, 1)
            << " ns/RecordWrite, " << TablePrinter::Fixed(cost.snapshot_ns, 1)
            << " ns/AttributionSnapshot, " << TablePrinter::Fixed(cost.publish_ns, 1)
            << " ns/PublishUtilization(128 segs)\n"
            << "exact-sum invariant: " << (all_exact ? "held in every config" : "VIOLATED")
            << "\n\nExpected shape: cleaner share and write amplification rise with\n"
            << "utilization, fastest under uniform churn (no skew for the cleaner\n"
            << "to exploit), slowest under hot/cold (hot segments clean cheap).\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"space_observatory\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"metrics_enabled\": " << (obs::kMetricsEnabled ? "true" : "false") << ",\n"
      << "  \"exact_sum_all\": " << (all_exact ? "true" : "false") << ",\n"
      << "  \"self_cost_ns\": {\"record_write\": " << cost.record_write_ns
      << ", \"attribution_snapshot\": " << cost.snapshot_ns
      << ", \"publish_utilization\": " << cost.publish_ns << "},\n"
      << "  \"configs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    out << "    {\"workload\": \"" << r.workload << "\", \"target_util\": " << r.target_util
        << ", \"measured_util\": " << r.measured_util
        << ", \"write_amplification\": " << r.write_amplification
        << ", \"segments_cleaned\": " << r.segments_cleaned
        << ", \"util_mean\": " << r.util_mean
        << ", \"exact_sum_ok\": " << (r.exact_sum_ok ? "true" : "false")
        << ",\n     \"bytes\": {";
    for (size_t s = 0; s < obs::kIoSourceCount; ++s) {
      out << (s == 0 ? "" : ", ") << "\""
          << obs::IoSourceName(static_cast<obs::IoSource>(s)) << "\": " << r.attr.bytes[s];
    }
    out << "},\n     \"writes\": {";
    for (size_t s = 0; s < obs::kIoSourceCount; ++s) {
      out << (s == 0 ? "" : ", ") << "\""
          << obs::IoSourceName(static_cast<obs::IoSource>(s)) << "\": "
          << r.attr.writes[s];
    }
    out << "}}" << (i + 1 < results.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return all_exact ? 0 : 1;
}

}  // namespace
}  // namespace logfs

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_PR10.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--smoke] [--out PATH]\n";
      return 2;
    }
  }
  return logfs::RunBench(smoke, out_path);
}
