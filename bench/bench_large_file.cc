// Figure 4 reproduction: large-file transfer rates.
//
// "Writing a 100-megabyte file sequentially, reading the file sequentially,
//  writing 100 megabytes randomly to the file, reading 100 megabytes
//  randomly from the file, and rereading the file sequentially again...
//  an eight-kilobyte request size." — Section 5.2
//
// Paper shape to reproduce:
//   * LFS write bandwidth is independent of the access pattern and close to
//     the disk's maximum; FFS random writes collapse to seek-bound rates.
//   * Sequential read: comparable (both lay the file out sequentially).
//   * Random read: comparable (both must seek).
//   * Sequential reread after random writes: FFS wins — the one access
//     pattern where update-in-place beats the log (LFS scattered the file).
//
// Note: in the paper the random writes were not unique, so LFS's random
// write rate exceeded its sequential rate via cache overwrites. Here every
// request slot is written exactly once (a harder, cleaner comparison).
#include <iostream>

#include "src/workload/benchmarks.h"
#include "src/workload/report.h"
#include "src/workload/testbed.h"

namespace logfs {
namespace {

int RunBench() {
  std::cout << "=== Figure 4: large-file I/O (KB/s, 100 MB file, 8 KB requests) ===\n";
  LargeFileParams params;

  auto lfs_bed = MakeLfsTestbed();
  auto ffs_bed = MakeFfsTestbed();
  if (!lfs_bed.ok() || !ffs_bed.ok()) {
    std::cerr << "testbed setup failed\n";
    return 1;
  }
  auto lfs = RunLargeFileBenchmark(*lfs_bed, params);
  if (!lfs.ok()) {
    std::cerr << "LFS benchmark failed: " << lfs.status().ToString() << "\n";
    return 1;
  }
  auto ffs = RunLargeFileBenchmark(*ffs_bed, params);
  if (!ffs.ok()) {
    std::cerr << "FFS benchmark failed: " << ffs.status().ToString() << "\n";
    return 1;
  }

  TablePrinter table({"phase", "LFS KB/s", "FFS KB/s", "LFS/FFS"});
  for (size_t phase = 0; phase < lfs->size(); ++phase) {
    const double lfs_rate = (*lfs)[phase].KBytesPerSecond();
    const double ffs_rate = (*ffs)[phase].KBytesPerSecond();
    table.AddRow({(*lfs)[phase].name, TablePrinter::Fixed(lfs_rate, 0),
                  TablePrinter::Fixed(ffs_rate, 0),
                  TablePrinter::Fixed(ffs_rate > 0 ? lfs_rate / ffs_rate : 0, 2) + "x"});
  }
  table.Print(std::cout);
  std::cout << "\nDisk max bandwidth: 1300 KB/s (WREN IV).\n"
            << "Expected shape: LFS ~= FFS on seq write/read and rand read; LFS >> FFS\n"
            << "on rand write; FFS > LFS on seq reread after random writes.\n";
  return 0;
}

}  // namespace
}  // namespace logfs

int main() { return logfs::RunBench(); }
