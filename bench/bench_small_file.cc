// Figure 3 reproduction: small-file create / read / delete rates.
//
// "The creation phase measured the speed at which 10000 one-kilobyte and
//  1000 ten-kilobyte files could be created. Following the creation, the
//  file cache was flushed and all the files were read (in the same order
//  as they were created). Finally, we measured the speed at which the
//  files could be deleted." — Section 5.1
//
// Paper shape to reproduce: LFS is roughly an order of magnitude faster at
// create and delete (synchronous random FFS writes vs batched sequential
// LFS segments); LFS read rate matches or exceeds FFS.
#include <cstdio>
#include <iostream>

#include "src/workload/benchmarks.h"
#include "src/workload/report.h"
#include "src/workload/testbed.h"

namespace logfs {
namespace {

int RunBench() {
  std::cout << "=== Figure 3: small-file I/O (files/sec, simulated Sun-4/260 + WREN IV) ===\n";
  TablePrinter table({"files x size", "phase", "LFS files/s", "FFS files/s", "LFS/FFS"});

  struct Config {
    int num_files;
    size_t file_size;
  };
  for (const Config& config : {Config{10000, 1024}, Config{1000, 10240}}) {
    SmallFileParams params;
    params.num_files = config.num_files;
    params.file_size = config.file_size;

    auto lfs_bed = MakeLfsTestbed();
    auto ffs_bed = MakeFfsTestbed();
    if (!lfs_bed.ok() || !ffs_bed.ok()) {
      std::cerr << "testbed setup failed\n";
      return 1;
    }
    auto lfs = RunSmallFileBenchmark(*lfs_bed, params);
    auto ffs = RunSmallFileBenchmark(*ffs_bed, params);
    if (!lfs.ok() || !ffs.ok()) {
      std::cerr << "benchmark failed: " << lfs.status().ToString() << " / "
                << ffs.status().ToString() << "\n";
      return 1;
    }
    const std::string label =
        std::to_string(config.num_files) + " x " + std::to_string(config.file_size / 1024) +
        "KB";
    for (size_t phase = 0; phase < lfs->size(); ++phase) {
      const double lfs_rate = (*lfs)[phase].OpsPerSecond();
      const double ffs_rate = (*ffs)[phase].OpsPerSecond();
      table.AddRow({label, (*lfs)[phase].name, TablePrinter::Fixed(lfs_rate, 1),
                    TablePrinter::Fixed(ffs_rate, 1),
                    TablePrinter::Fixed(ffs_rate > 0 ? lfs_rate / ffs_rate : 0.0, 1) + "x"});
    }
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference (Sun-4/260, WREN IV): LFS creates/deletes about an\n"
               "order of magnitude faster than SunOS FFS; reads match or exceed it.\n";
  return 0;
}

}  // namespace
}  // namespace logfs

int main() { return logfs::RunBench(); }
