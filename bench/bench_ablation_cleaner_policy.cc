// Ablation: cleaner victim-selection policy (DESIGN.md ABL2).
//
// Section 4.3.4: "Although cleaning full segments will not harm the system,
// it is desirable to choose the segments with the most free space." This
// bench runs an identical overwrite-churn workload under the greedy policy
// (paper) and a FIFO baseline (oldest segment first), and compares how many
// live blocks each policy had to copy per segment reclaimed.
#include <iostream>

#include "src/lfs/lfs_file_system.h"
#include "src/workload/benchmarks.h"
#include "src/workload/report.h"
#include "src/workload/testbed.h"

namespace logfs {
namespace {

struct PolicyOutcome {
  uint64_t segments_cleaned = 0;
  uint64_t live_copied = 0;
  double cleaning_seconds = 0.0;
  double total_seconds = 0.0;
};

Result<PolicyOutcome> RunChurn(SegmentUsageTable::VictimPolicy policy) {
  TestbedParams params;
  params.disk_bytes = 96ull << 20;  // Small disk: cleaning pressure.
  params.lfs_options.cleaner_policy = policy;
  ASSIGN_OR_RETURN(Testbed bed, MakeLfsTestbed(params));
  auto* lfs = static_cast<LfsFileSystem*>(bed.fs.get());

  // Hot/cold churn: 70% of overwrites hit 10% of the files, so segment
  // utilizations spread out — exactly the situation where greedy wins.
  Rng rng(7);
  const int num_files = 200;
  const size_t file_size = 256 * 1024;
  std::vector<std::byte> payload(file_size, std::byte{0x77});
  for (int i = 0; i < num_files; ++i) {
    RETURN_IF_ERROR(bed.paths->WriteFile("/f" + std::to_string(i), payload));
  }
  RETURN_IF_ERROR(bed.fs->Sync());
  const double t0 = bed.Now();
  for (int round = 0; round < 400; ++round) {
    const int target = rng.NextBool(0.7) ? static_cast<int>(rng.NextBelow(num_files / 10))
                                         : static_cast<int>(rng.NextBelow(num_files));
    RETURN_IF_ERROR(bed.paths->WriteFile("/f" + std::to_string(target), payload));
    bed.clock->Advance(31.0);
    RETURN_IF_ERROR(bed.fs->Tick());
  }
  RETURN_IF_ERROR(bed.fs->Sync());

  PolicyOutcome outcome;
  outcome.segments_cleaned = lfs->cleaner_stats().segments_cleaned;
  outcome.live_copied = lfs->cleaner_stats().live_blocks_copied;
  outcome.total_seconds = bed.Now() - t0;
  return outcome;
}

int RunBench() {
  std::cout << "=== Ablation ABL2: cleaner victim policy, greedy (paper) vs FIFO ===\n";
  auto greedy = RunChurn(SegmentUsageTable::VictimPolicy::kGreedy);
  auto fifo = RunChurn(SegmentUsageTable::VictimPolicy::kFifo);
  if (!greedy.ok() || !fifo.ok()) {
    std::cerr << "churn run failed: " << greedy.status().ToString() << " / "
              << fifo.status().ToString() << "\n";
    return 1;
  }
  TablePrinter table({"policy", "segments cleaned", "live blocks copied", "copies/segment"});
  auto add = [&](const char* name, const PolicyOutcome& outcome) {
    table.AddRow({name, TablePrinter::Int(outcome.segments_cleaned),
                  TablePrinter::Int(outcome.live_copied),
                  TablePrinter::Fixed(outcome.segments_cleaned > 0
                                          ? static_cast<double>(outcome.live_copied) /
                                                outcome.segments_cleaned
                                          : 0.0,
                                      1)});
  };
  add("greedy", *greedy);
  add("fifo", *fifo);
  table.Print(std::cout);
  std::cout << "\nExpected shape: greedy copies fewer live blocks per reclaimed segment\n"
            << "(it picks the emptiest victims), so its cleaning overhead is lower on\n"
            << "skewed (hot/cold) workloads.\n";
  return 0;
}

}  // namespace
}  // namespace logfs

int main() { return logfs::RunBench(); }
