#!/bin/sh
# Regenerates the wall-clock perf reports (BENCH_PR*.json at the repo root)
# from a fresh optimized build. The simulated-time benches are separate
# binaries (bench_small_file, bench_cleaning, ...) and are bit-reproducible,
# so they need no runner; this script exists for the host-time numbers,
# which depend on the machine they ran on.
#
# Usage: bench/run_benches.sh [--smoke]
set -e
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j --target bench_writepath --target bench_telemetry --target bench_serve --target bench_shard_scaling --target bench_trace_attribution --target bench_space_observatory >/dev/null

# The metrics snapshot lands next to the timing JSON so a BENCH_*.json
# trajectory carries the counters that explain it (flushes, fill levels,
# cleaner work), not just the wall-clock numbers.
./build/bench/bench_writepath "$@" --out BENCH_PR2.json --metrics-out BENCH_PR2.metrics.json

# The flight-recorder bench: a phased workload with one telemetry snapshot
# per phase, plus the sampler's own host-time cost and a black-box
# round-trip check against the raw volume image.
./build/bench/bench_telemetry "$@" --out BENCH_PR5.json

# The file-service scaling bench: ops/s and client-observed latency
# percentiles vs client count under Zipf(0.9) shared files.
./build/bench/bench_serve "$@" --out BENCH_PR6.json

# The sharded multi-log scaling bench: host wall-clock write throughput
# over shards {1,2,4} x threads {1,2,4} driven by real OS threads.
./build/bench/bench_shard_scaling "$@" --out BENCH_PR7.json

# The trace-attribution bench: per-layer critical-path shares over a client
# sweep and a shard sweep, plus the tracer's own ns/span cost (enabled vs
# runtime-gated off).
./build/bench/bench_trace_attribution "$@" --out BENCH_PR8.json

# The space-observatory bench: per-source write-attribution shares and write
# amplification under uniform/Zipf/hot-cold churn at 70/80/90% utilization,
# with the exact-sum invariant checked in every cell, plus the observatory's
# own ns/write self-cost.
./build/bench/bench_space_observatory "$@" --out BENCH_PR10.json
