// Extension bench: LFS vs FFS on a RAID-0 disk array (paper Section 2.1).
//
// "The bandwidth and throughput of disk subsystems can be substantially
//  increased by the use of arrays of disks such as RAIDs, [but] the access
//  time for small disk accesses is not substantially improved."
//
// Consequence the paper implies but never measures: striping helps a
// bandwidth-bound file system and does almost nothing for a latency-bound
// one. LFS turns small-file traffic into large sequential segment writes,
// so its throughput should scale with the member count; FFS's synchronous
// small metadata writes stay pinned at per-access latency no matter how
// many spindles are added.
#include <iostream>
#include <memory>

#include "src/disk/striped_disk.h"
#include "src/workload/benchmarks.h"
#include "src/workload/report.h"
#include "src/workload/testbed.h"

namespace logfs {
namespace {

// A testbed whose device is a RAID-0 array. The workload runners only need
// the Testbed's fs/paths/clock members; the array is owned here.
struct ArrayBed {
  // Declaration order matters: `bed` (whose file system syncs to the array
  // at destruction) must be destroyed before `array`.
  std::unique_ptr<StripedDisk> array;
  Testbed bed;
};

Result<ArrayBed> MakeArrayTestbed(uint32_t members, bool use_lfs) {
  ArrayBed rig;
  rig.bed.clock = std::make_unique<SimClock>();
  rig.bed.cpu = std::make_unique<CpuModel>(rig.bed.clock.get(), 10.0);
  // Array totals ~300 MB regardless of member count; 128 KB stripe unit.
  rig.array = std::make_unique<StripedDisk>(members, (300ull << 20) / kSectorSize / members,
                                            (128 * 1024) / kSectorSize, rig.bed.clock.get());
  if (use_lfs) {
    LfsParams params;
    RETURN_IF_ERROR(LfsFileSystem::Format(rig.array.get(), params));
    ASSIGN_OR_RETURN(auto fs, LfsFileSystem::Mount(rig.array.get(), rig.bed.clock.get(),
                                                   rig.bed.cpu.get()));
    rig.bed.fs = std::move(fs);
  } else {
    FfsParams params;
    RETURN_IF_ERROR(FfsFileSystem::Format(rig.array.get(), params));
    ASSIGN_OR_RETURN(auto fs, FfsFileSystem::Mount(rig.array.get(), rig.bed.clock.get(),
                                                   rig.bed.cpu.get()));
    rig.bed.fs = std::move(fs);
  }
  rig.bed.paths = std::make_unique<PathFs>(rig.bed.fs.get());
  return rig;
}

int RunBench() {
  std::cout << "=== Extension: RAID-0 scaling, large-file sequential write (Section 2.1) "
               "===\n";
  TablePrinter table({"members", "LFS seq-write KB/s", "FFS seq-write KB/s",
                      "LFS scaling", "FFS scaling"});
  double lfs_base = 0.0;
  double ffs_base = 0.0;
  for (uint32_t members : {1u, 2u, 4u, 8u}) {
    auto lfs_bed = MakeArrayTestbed(members, true);
    auto ffs_bed = MakeArrayTestbed(members, false);
    if (!lfs_bed.ok() || !ffs_bed.ok()) {
      std::cerr << "array testbed failed\n";
      return 1;
    }
    LargeFileParams params;
    params.file_bytes = 48ull << 20;
    auto lfs = RunLargeFileBenchmark(lfs_bed->bed, params);
    auto ffs = RunLargeFileBenchmark(ffs_bed->bed, params);
    if (!lfs.ok() || !ffs.ok()) {
      std::cerr << "benchmark failed: " << lfs.status().ToString() << " / "
                << ffs.status().ToString() << "\n";
      return 1;
    }
    const double lfs_rate = (*lfs)[0].KBytesPerSecond();
    const double ffs_rate = (*ffs)[0].KBytesPerSecond();
    if (members == 1) {
      lfs_base = lfs_rate;
      ffs_base = ffs_rate;
    }
    table.AddRow({std::to_string(members), TablePrinter::Fixed(lfs_rate, 0),
                  TablePrinter::Fixed(ffs_rate, 0),
                  TablePrinter::Fixed(lfs_rate / lfs_base, 2) + "x",
                  TablePrinter::Fixed(ffs_rate / ffs_base, 2) + "x"});
  }
  table.Print(std::cout);

  std::cout << "\n=== Extension: RAID-0 scaling, small-file creation ===\n";
  TablePrinter small_table(
      {"members", "LFS create/s", "FFS create/s", "LFS scaling", "FFS scaling"});
  lfs_base = ffs_base = 0.0;
  for (uint32_t members : {1u, 4u}) {
    auto lfs_bed = MakeArrayTestbed(members, true);
    auto ffs_bed = MakeArrayTestbed(members, false);
    if (!lfs_bed.ok() || !ffs_bed.ok()) {
      return 1;
    }
    SmallFileParams params;
    params.num_files = 4000;
    params.file_size = 4096;
    auto lfs = RunSmallFileBenchmark(lfs_bed->bed, params);
    auto ffs = RunSmallFileBenchmark(ffs_bed->bed, params);
    if (!lfs.ok() || !ffs.ok()) {
      return 1;
    }
    const double lfs_rate = (*lfs)[0].OpsPerSecond();
    const double ffs_rate = (*ffs)[0].OpsPerSecond();
    if (members == 1) {
      lfs_base = lfs_rate;
      ffs_base = ffs_rate;
    }
    small_table.AddRow({std::to_string(members), TablePrinter::Fixed(lfs_rate, 1),
                        TablePrinter::Fixed(ffs_rate, 1),
                        TablePrinter::Fixed(lfs_rate / lfs_base, 2) + "x",
                        TablePrinter::Fixed(ffs_rate / ffs_base, 2) + "x"});
  }
  small_table.Print(std::cout);
  std::cout << "\nExpected shape: LFS sequential-write bandwidth scales with the member\n"
            << "count (its segment writes are bandwidth-bound); FFS small-file creation\n"
            << "barely moves (latency-bound synchronous metadata writes) — the paper's\n"
            << "Section 2.1 asymmetry, realized at the file-system level.\n";
  return 0;
}

}  // namespace
}  // namespace logfs

int main() { return logfs::RunBench(); }
