// Ablation: file-cache size and write-back age threshold (DESIGN.md ABL3).
//
// Section 2.2 argues that large caches shift disk traffic toward writes;
// Section 4.3.5 picks a 30-second write-back age. This bench runs the
// office/engineering synthetic workload across cache sizes and age
// thresholds and reports the achieved op rate and the read/write traffic
// split at the disk.
#include <iostream>

#include "src/workload/benchmarks.h"
#include "src/workload/report.h"
#include "src/workload/testbed.h"

namespace logfs {
namespace {

int RunBench() {
  std::cout << "=== Ablation ABL3a: cache size vs office-workload disk traffic (LFS) ===\n";
  {
    TablePrinter table(
        {"cache", "ops/s", "disk reads", "disk writes", "read sectors", "write sectors"});
    for (size_t cache_mb : {1u, 4u, 15u, 64u}) {
      TestbedParams params;
      params.lfs_options.cache_policy.capacity_blocks = cache_mb * 256;  // 4 KB blocks.
      auto bed = MakeLfsTestbed(params);
      if (!bed.ok()) {
        std::cerr << "testbed setup failed\n";
        return 1;
      }
      OfficeWorkloadParams office;
      office.operations = 4000;
      auto result = RunOfficeWorkload(*bed, office);
      if (!result.ok()) {
        std::cerr << "workload failed: " << result.status().ToString() << "\n";
        return 1;
      }
      const DiskStats& stats = bed->disk->stats();
      table.AddRow({std::to_string(cache_mb) + " MB",
                    TablePrinter::Fixed(result->OpsPerSecond(), 1),
                    TablePrinter::Int(stats.read_ops), TablePrinter::Int(stats.write_ops),
                    TablePrinter::Int(stats.sectors_read),
                    TablePrinter::Int(stats.sectors_written)});
    }
    table.Print(std::cout);
    std::cout << "\nExpected shape: growing the cache absorbs reads (read traffic falls\n"
              << "sharply) while write traffic persists — the Section 2.2 argument that\n"
              << "1990s disk traffic is write-dominated, which motivates LFS itself.\n\n";
  }

  std::cout << "=== Ablation ABL3b: write-back age threshold (LFS, 15 MB cache) ===\n";
  {
    TablePrinter table({"age threshold", "disk writes", "write sectors", "sectors/write"});
    for (double age : {1.0, 5.0, 30.0, 120.0}) {
      TestbedParams params;
      params.lfs_options.cache_policy.writeback_age_seconds = age;
      auto bed = MakeLfsTestbed(params);
      if (!bed.ok()) {
        std::cerr << "testbed setup failed\n";
        return 1;
      }
      OfficeWorkloadParams office;
      office.operations = 4000;
      auto result = RunOfficeWorkload(*bed, office);
      if (!result.ok()) {
        std::cerr << "workload failed: " << result.status().ToString() << "\n";
        return 1;
      }
      const DiskStats& stats = bed->disk->stats();
      table.AddRow({TablePrinter::Fixed(age, 0) + " s", TablePrinter::Int(stats.write_ops),
                    TablePrinter::Int(stats.sectors_written),
                    TablePrinter::Fixed(stats.write_ops > 0
                                            ? static_cast<double>(stats.sectors_written) /
                                                  stats.write_ops
                                            : 0.0,
                                        1)});
    }
    table.Print(std::cout);
    std::cout << "\nExpected shape: longer thresholds batch more dirty blocks per segment\n"
              << "write (higher sectors/write) and absorb short-lived files entirely,\n"
              << "at the cost of a larger crash-loss window (Section 4.4.1).\n";
  }
  return 0;
}

}  // namespace
}  // namespace logfs

int main() { return logfs::RunBench(); }
