// Ablation: sequential read-ahead (DESIGN.md extension).
//
// Section 4.2.1: "For files that are written in their entirety, the log
// layout algorithm places the data blocks sequentially on disk. The read
// performance of such a file is excellent because the inode and all of the
// file's data blocks are located close together." Read-ahead converts that
// adjacency into fewer, larger transfers. This bench reruns the Figure 3
// read phase and a large-file sequential read at several read-ahead depths.
#include <iostream>

#include "src/workload/benchmarks.h"
#include "src/workload/report.h"
#include "src/workload/testbed.h"

namespace logfs {
namespace {

int RunBench() {
  std::cout << "=== Ablation: LFS sequential read-ahead depth ===\n";
  TablePrinter table({"read-ahead", "small-file read files/s", "100MB seq read KB/s",
                      "disk read ops (small-file)"});
  for (uint32_t depth : {0u, 2u, 8u, 32u}) {
    TestbedParams params;
    params.lfs_options.read_ahead_blocks = depth;
    // Model a late-80s SCSI command overhead so per-request costs are
    // visible (the default calibration charges positioning + transfer only).
    params.disk_model.command_overhead_ms = 1.0;

    auto small_bed = MakeLfsTestbed(params);
    if (!small_bed.ok()) {
      std::cerr << "testbed setup failed\n";
      return 1;
    }
    SmallFileParams small;
    small.num_files = 4000;
    small.file_size = 4096;
    auto phases = RunSmallFileBenchmark(*small_bed, small);
    if (!phases.ok()) {
      std::cerr << "small-file benchmark failed: " << phases.status().ToString() << "\n";
      return 1;
    }

    auto large_bed = MakeLfsTestbed(params);
    if (!large_bed.ok()) {
      return 1;
    }
    LargeFileParams large;
    large.file_bytes = 64ull << 20;
    auto large_phases = RunLargeFileBenchmark(*large_bed, large);
    if (!large_phases.ok()) {
      std::cerr << "large-file benchmark failed: " << large_phases.status().ToString()
                << "\n";
      return 1;
    }

    table.AddRow({depth == 0 ? "off" : std::to_string(depth) + " blocks",
                  TablePrinter::Fixed((*phases)[1].OpsPerSecond(), 1),
                  TablePrinter::Fixed((*large_phases)[1].KBytesPerSecond(), 0),
                  TablePrinter::Int(small_bed->disk->stats().read_ops)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: deeper read-ahead collapses per-block requests into\n"
            << "multi-block transfers, raising sequential read rates toward the disk\n"
            << "maximum; small files (1 block each) see a modest gain only through\n"
            << "their neighbours being co-resident in the same segment.\n";
  return 0;
}

}  // namespace
}  // namespace logfs

int main() { return logfs::RunBench(); }
