// Figures 1 & 2 reproduction: the disk-access pattern of small-file
// creation under FFS vs LFS.
//
// The paper's example: create dir1/file1 and dir2/file2 (one data block
// each), then let delayed write-back complete. Under BSD FFS this costs 8
// scattered writes, half of them synchronous (Figure 1); under LFS all the
// modified blocks go out in a single sequential asynchronous transfer
// (Figure 2).
//
// This binary performs exactly that sequence against both file systems on a
// traced disk and prints every resulting disk write.
#include <iostream>

#include "src/disk/tracing_disk.h"
#include "src/workload/report.h"
#include "src/workload/testbed.h"

namespace logfs {
namespace {

struct PatternResult {
  uint64_t writes = 0;
  uint64_t sync_writes = 0;
  uint64_t non_sequential = 0;
  uint64_t sectors = 0;
  std::vector<std::string> trace_lines;
};

template <typename MakeBed>
Result<PatternResult> RunPattern(MakeBed make_bed) {
  ASSIGN_OR_RETURN(Testbed bed, make_bed());
  // Re-wrap the device in a tracer by replaying the sequence on a fresh
  // testbed whose FS talks to the traced device. Simpler: trace from the
  // start and slice off everything before our marker.
  TracingDisk traced(bed.disk.get(), bed.clock.get());
  // Mount a fresh FS instance over the traced device (same image).
  // The existing bed.fs already synced its mount state; unmount it first.
  RETURN_IF_ERROR(bed.fs->Sync());
  bed.fs.reset();

  std::unique_ptr<FileSystem> fs;
  {
    auto lfs = LfsFileSystem::Mount(&traced, bed.clock.get(), bed.cpu.get());
    if (lfs.ok()) {
      fs = std::move(*lfs);
    } else {
      ASSIGN_OR_RETURN(auto ffs, FfsFileSystem::Mount(&traced, bed.clock.get(), bed.cpu.get()));
      fs = std::move(ffs);
    }
  }
  PathFs paths(fs.get());
  // Pre-create the directories (the paper's example assumes they exist),
  // and quiesce so only the two file creations appear in the trace.
  RETURN_IF_ERROR(paths.Mkdir("/dir1").status());
  RETURN_IF_ERROR(paths.Mkdir("/dir2").status());
  RETURN_IF_ERROR(fs->Sync());
  traced.ClearTrace();

  // The paper's system-call sequence.
  const std::vector<std::byte> block(4096, std::byte{0xAB});
  ASSIGN_OR_RETURN(InodeNum dir1, paths.Resolve("/dir1"));
  ASSIGN_OR_RETURN(InodeNum file1, fs->Create(dir1, "file1", FileType::kRegular));
  RETURN_IF_ERROR(fs->Write(file1, 0, block).status());
  ASSIGN_OR_RETURN(InodeNum dir2, paths.Resolve("/dir2"));
  ASSIGN_OR_RETURN(InodeNum file2, fs->Create(dir2, "file2", FileType::kRegular));
  RETURN_IF_ERROR(fs->Write(file2, 0, block).status());
  // Delayed write-back completes (age threshold expires).
  bed.clock->Advance(31.0);
  RETURN_IF_ERROR(fs->Tick());

  PatternResult result;
  for (const TraceRecord& record : traced.trace()) {
    if (record.kind == TraceRecord::Kind::kWrite) {
      ++result.writes;
      result.sync_writes += record.synchronous ? 1 : 0;
      result.non_sequential += record.sequential ? 0 : 1;
      result.sectors += record.sector_count;
      result.trace_lines.push_back(record.ToString());
    }
  }
  fs.reset();  // Unmount quietly (may add a checkpoint after the trace).
  return result;
}

int RunBench() {
  std::cout << "=== Figures 1 & 2: disk writes for creating dir1/file1 and dir2/file2 ===\n\n";
  auto ffs = RunPattern([] { return MakeFfsTestbed(); });
  auto lfs = RunPattern([] {
    // The example measures the delayed write-back only; push the periodic
    // checkpoint out of the way so its writes don't join the trace.
    TestbedParams params;
    params.lfs.checkpoint_interval_seconds = 1e9;
    return MakeLfsTestbed(params);
  });
  if (!ffs.ok() || !lfs.ok()) {
    std::cerr << "pattern run failed: " << ffs.status().ToString() << " / "
              << lfs.status().ToString() << "\n";
    return 1;
  }
  std::cout << "FFS (Figure 1) writes:\n";
  for (const auto& line : ffs->trace_lines) {
    std::cout << "  " << line << "\n";
  }
  std::cout << "\nLFS (Figure 2) writes:\n";
  for (const auto& line : lfs->trace_lines) {
    std::cout << "  " << line << "\n";
  }

  TablePrinter table({"metric", "FFS", "LFS", "paper FFS", "paper LFS"});
  table.AddRow({"write requests", TablePrinter::Int(ffs->writes), TablePrinter::Int(lfs->writes),
                "8", "1"});
  table.AddRow({"synchronous", TablePrinter::Int(ffs->sync_writes),
                TablePrinter::Int(lfs->sync_writes), "4", "0"});
  table.AddRow({"non-sequential", TablePrinter::Int(ffs->non_sequential),
                TablePrinter::Int(lfs->non_sequential), "8", "1"});
  std::cout << "\n";
  table.Print(std::cout);
  std::cout << "\nShape check: "
            << (ffs->sync_writes >= 4 && lfs->sync_writes == 0 && lfs->writes <= 2 &&
                        ffs->writes >= 6
                    ? "PASS"
                    : "WARN")
            << " (FFS: many small scattered + synchronous; LFS: one large sequential "
               "asynchronous transfer)\n";
  return 0;
}

}  // namespace
}  // namespace logfs

int main() { return logfs::RunBench(); }
