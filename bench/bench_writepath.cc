// Wall-clock perf harness for the zero-copy segment I/O pipeline (PR 2).
//
// Unlike every other bench in this directory, which reports *simulated*
// seconds from the SimClock, this one measures *host* CPU time: the copies
// and checksums the write path performs are real work on the host, and the
// point of the zero-copy pipeline is to shrink exactly that work. Four
// measurements:
//
//   1. crc32          — the slice-by-8 kernel vs the one-table bytewise
//                       reference, MB/s and ns per 4 KB block.
//   2. segment_flush  — the seed's copy-per-block flush (memcpy staging +
//                       bytewise CRC + scalar write), emulated faithfully,
//                       vs the real SegmentBuilder zero-copy path
//                       (AppendExternal + streamed CRC + vectored write).
//   3. decode_summary — the seed's clone-the-summary-block decode emulated
//                       (copy + zero the CRC field + bytewise CRC) vs the
//                       real clone-free DecodeSummary.
//   4. cleaner        — host throughput of a real cleaning pass (testbed
//                       filesystem, utilization 0.5), whose read side runs
//                       DecodeSummary over every victim segment.
//
// Emits a JSON report (default BENCH_PR2.json) with before/after/speedup
// for each measurement. `--smoke` shrinks everything for CI; `--out PATH`
// redirects the report.
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/disk/memory_disk.h"
#include "src/lfs/lfs_file_system.h"
#include "src/obs/metrics.h"
#include "src/lfs/lfs_segment.h"
#include "src/util/crc32.h"
#include "src/workload/benchmarks.h"
#include "src/workload/testbed.h"

namespace logfs {
namespace {

double HostNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Runs `body` until at least `min_seconds` of host time has elapsed and
// returns the mean seconds per iteration. One untimed warm-up iteration.
template <typename Body>
double SecondsPerIteration(double min_seconds, Body&& body) {
  body();
  uint64_t iterations = 0;
  const double start = HostNow();
  double elapsed = 0.0;
  do {
    body();
    ++iterations;
    elapsed = HostNow() - start;
  } while (elapsed < min_seconds);
  return elapsed / static_cast<double>(iterations);
}

std::vector<std::byte> Pattern(size_t bytes, uint8_t seed) {
  std::vector<std::byte> data(bytes);
  for (size_t i = 0; i < bytes; ++i) {
    data[i] = static_cast<std::byte>(seed + 7 * i);
  }
  return data;
}

struct BeforeAfter {
  double before_mb_s = 0.0;
  double after_mb_s = 0.0;
  double before_ns_per_block = 0.0;
  double after_ns_per_block = 0.0;
  double Speedup() const { return before_mb_s > 0 ? after_mb_s / before_mb_s : 0.0; }
};

// Keeps results observable so the optimizer cannot delete the timed work.
volatile uint32_t g_sink = 0;

// --- 1. CRC32 kernels ----------------------------------------------------------

BeforeAfter BenchCrc32(bool smoke) {
  const size_t bytes = (smoke ? 1u : 16u) << 20;
  const double min_seconds = smoke ? 0.02 : 0.4;
  const std::vector<std::byte> data = Pattern(bytes, 1);

  const double bytewise = SecondsPerIteration(min_seconds, [&] {
    g_sink = Crc32Finalize(Crc32UpdateBytewise(Crc32Init(), data));
  });
  const double slice8 = SecondsPerIteration(min_seconds, [&] {
    g_sink = Crc32Finalize(Crc32Update(Crc32Init(), data));
  });

  BeforeAfter r;
  r.before_mb_s = bytes / bytewise / 1e6;
  r.after_mb_s = bytes / slice8 / 1e6;
  const double blocks = bytes / 4096.0;
  r.before_ns_per_block = bytewise / blocks * 1e9;
  r.after_ns_per_block = slice8 / blocks * 1e9;
  return r;
}

// --- 2. Segment flush ----------------------------------------------------------

// The seed's flush, reproduced as a cost model: every content block is
// memcpy'd into a contiguous staging buffer at append time, the CRC runs
// the bytewise kernel over the whole partial segment, and the device sees
// one scalar write of the staging buffer. Field serialization in the
// summary is a few dozen bytes and is omitted (it favours the old path).
class CopyPathFlusher {
 public:
  CopyPathFlusher(MemoryDisk* disk, const LfsSuperblock& sb, size_t nblocks)
      : disk_(disk),
        sb_(sb),
        nblocks_(nblocks),
        staging_((1 + nblocks) * sb.block_size) {}

  Status Flush(std::span<const std::vector<std::byte>> pool, uint32_t segment) {
    const uint32_t bs = sb_.block_size;
    for (size_t i = 0; i < nblocks_; ++i) {
      std::memcpy(staging_.data() + (1 + i) * bs, pool[i % pool.size()].data(), bs);
    }
    std::span<const std::byte> whole(staging_);
    uint32_t crc = Crc32Init();
    crc = Crc32UpdateBytewise(crc, whole.subspan(4, bs - 4));  // Summary, CRC field skipped.
    crc = Crc32UpdateBytewise(crc, whole.subspan(bs));         // Content.
    crc = Crc32Finalize(crc);
    std::memcpy(staging_.data(), &crc, sizeof(crc));
    return disk_->WriteSectors(sb_.SegmentBlockSector(segment, 0), staging_);
  }

  size_t BytesPerFlush() const { return staging_.size(); }

 private:
  MemoryDisk* disk_;
  LfsSuperblock sb_;
  size_t nblocks_;
  std::vector<std::byte> staging_;
};

BeforeAfter BenchSegmentFlush(bool smoke) {
  const double min_seconds = smoke ? 0.02 : 0.4;
  MemoryDisk disk(1u << 20, /*clock=*/nullptr);  // 512 MB, no simulated time.
  auto geometry = ComputeLfsGeometry(LfsParams{.max_inodes = 1024}, disk.sector_count());
  if (!geometry.ok()) {
    std::cerr << "geometry failed: " << geometry.status().ToString() << "\n";
    return {};
  }
  const LfsSuperblock sb = *geometry;
  const size_t nblocks = std::min<size_t>(SummaryCapacity(sb.block_size),
                                          sb.BlocksPerSegment() - 1);

  // A pool of "cache blocks" the flush sources from, larger than L2 so the
  // copy path cannot hide its staging memcpy in cache residency.
  std::vector<std::vector<std::byte>> pool;
  for (size_t i = 0; i < 2 * nblocks; ++i) {
    pool.push_back(Pattern(sb.block_size, static_cast<uint8_t>(i)));
  }

  CopyPathFlusher copy_path(&disk, sb, nblocks);
  uint32_t seg = 0;
  Status status = OkStatus();
  const double before = SecondsPerIteration(min_seconds, [&] {
    status = copy_path.Flush(pool, seg);
    seg = (seg + 1) % 4;
  });
  if (!status.ok()) {
    std::cerr << "copy-path flush failed: " << status.ToString() << "\n";
    return {};
  }

  SegmentBuilder builder(&disk, sb);
  uint64_t sequence = 1;
  const double after = SecondsPerIteration(min_seconds, [&] {
    builder.StartAt(seg, 0);
    for (size_t i = 0; i < nblocks; ++i) {
      auto addr = builder.AppendExternal(BlockKind::kData, 1, 1,
                                         static_cast<int64_t>(i), pool[i % pool.size()]);
      if (!addr.ok()) {
        status = addr.status();
        return;
      }
    }
    status = builder.Flush(sequence++, 0.0);
    seg = (seg + 1) % 4;
  });
  if (!status.ok()) {
    std::cerr << "zero-copy flush failed: " << status.ToString() << "\n";
    return {};
  }

  BeforeAfter r;
  const double bytes = static_cast<double>(copy_path.BytesPerFlush());
  r.before_mb_s = bytes / before / 1e6;
  r.after_mb_s = bytes / after / 1e6;
  r.before_ns_per_block = before / static_cast<double>(nblocks) * 1e9;
  r.after_ns_per_block = after / static_cast<double>(nblocks) * 1e9;
  return r;
}

// --- 3. Summary decode (the cleaner's read side) -------------------------------

BeforeAfter BenchDecodeSummary(bool smoke) {
  const double min_seconds = smoke ? 0.02 : 0.4;
  MemoryDisk disk(1u << 18, /*clock=*/nullptr);
  auto geometry = ComputeLfsGeometry(LfsParams{.max_inodes = 1024}, disk.sector_count());
  if (!geometry.ok()) {
    return {};
  }
  const LfsSuperblock sb = *geometry;
  const size_t nblocks = std::min<size_t>(SummaryCapacity(sb.block_size),
                                          sb.BlocksPerSegment() - 1);

  // Build one valid partial segment to decode.
  SegmentSummary summary;
  summary.seq = 12;
  summary.timestamp = 1.0;
  std::vector<std::byte> content = Pattern(nblocks * sb.block_size, 5);
  for (size_t i = 0; i < nblocks; ++i) {
    summary.entries.push_back(
        {BlockKind::kData, 1, 1, static_cast<int64_t>(i)});
  }
  std::vector<std::byte> block(sb.block_size);
  if (!EncodeSummary(summary, block, content).ok()) {
    return {};
  }

  // The seed's decode cloned the summary block to zero its CRC field before
  // checksumming, and ran the bytewise kernel.
  const double before = SecondsPerIteration(min_seconds, [&] {
    std::vector<std::byte> clone(block.begin(), block.end());
    std::memset(clone.data(), 0, 4);
    uint32_t crc = Crc32Init();
    crc = Crc32UpdateBytewise(crc, clone);
    crc = Crc32UpdateBytewise(crc, content);
    g_sink = Crc32Finalize(crc);
  });
  bool decoded_ok = true;
  const double after = SecondsPerIteration(min_seconds, [&] {
    auto decoded = DecodeSummary(block, content);
    decoded_ok = decoded.ok();
    g_sink = decoded_ok ? static_cast<uint32_t>(decoded->entries.size()) : 0;
  });
  if (!decoded_ok) {
    std::cerr << "decode failed\n";
    return {};
  }

  BeforeAfter r;
  const double bytes = static_cast<double>(sb.block_size + content.size());
  r.before_mb_s = bytes / before / 1e6;
  r.after_mb_s = bytes / after / 1e6;
  r.before_ns_per_block = before / static_cast<double>(nblocks) * 1e9;
  r.after_ns_per_block = after / static_cast<double>(nblocks) * 1e9;
  return r;
}

// --- 4. Cleaner host throughput ------------------------------------------------

struct CleanerResult {
  bool ok = false;
  double host_seconds = 0.0;
  uint64_t segments_cleaned = 0;
  uint64_t blocks_examined = 0;
  uint64_t live_blocks_copied = 0;
  double BlocksExaminedPerSecond() const {
    return host_seconds > 0 ? blocks_examined / host_seconds : 0.0;
  }
};

CleanerResult BenchCleaner(bool smoke) {
  CleanerResult out;
  TestbedParams bed_params;
  bed_params.lfs_options.auto_clean = false;
  if (smoke) {
    bed_params.disk_bytes = 64ull << 20;
  }
  auto bed = MakeLfsTestbed(bed_params);
  if (!bed.ok()) {
    std::cerr << "testbed setup failed: " << bed.status().ToString() << "\n";
    return out;
  }
  CleaningRateParams params;
  params.utilization = 0.5;
  if (smoke) {
    params.fill_bytes = 8ull << 20;
  }
  const double start = HostNow();
  auto result = RunCleaningRateBenchmark(*bed, params);
  out.host_seconds = HostNow() - start;
  if (!result.ok()) {
    std::cerr << "cleaning benchmark failed: " << result.status().ToString() << "\n";
    return out;
  }
  out.segments_cleaned = result->segments_cleaned;
  auto* lfs = dynamic_cast<LfsFileSystem*>(bed->fs.get());
  if (lfs != nullptr) {
    out.blocks_examined = lfs->cleaner_stats().blocks_examined;
    out.live_blocks_copied = lfs->cleaner_stats().live_blocks_copied;
  }
  out.ok = true;
  return out;
}

// --- Report --------------------------------------------------------------------

void PrintSection(std::ostream& os, const char* name, const BeforeAfter& r,
                  const char* before_label, const char* after_label, bool last) {
  os << "  \"" << name << "\": {\n"
     << "    \"" << before_label << "_mb_s\": " << r.before_mb_s << ",\n"
     << "    \"" << after_label << "_mb_s\": " << r.after_mb_s << ",\n"
     << "    \"" << before_label << "_ns_per_block\": " << r.before_ns_per_block << ",\n"
     << "    \"" << after_label << "_ns_per_block\": " << r.after_ns_per_block << ",\n"
     << "    \"speedup\": " << r.Speedup() << "\n"
     << "  }" << (last ? "\n" : ",\n");
}

int RunBench(bool smoke, const std::string& out_path, const std::string& metrics_path) {
  std::cout << "=== Write-path host-time benchmarks (" << (smoke ? "smoke" : "full")
            << ") ===\n";

  const BeforeAfter crc = BenchCrc32(smoke);
  std::cout << "crc32:          bytewise " << crc.before_mb_s << " MB/s, slice8 "
            << crc.after_mb_s << " MB/s  (" << crc.Speedup() << "x)\n";

  const BeforeAfter flush = BenchSegmentFlush(smoke);
  std::cout << "segment flush:  copy-path " << flush.before_mb_s << " MB/s, zero-copy "
            << flush.after_mb_s << " MB/s  (" << flush.Speedup() << "x)\n";

  const BeforeAfter decode = BenchDecodeSummary(smoke);
  std::cout << "decode summary: clone " << decode.before_mb_s << " MB/s, in-place "
            << decode.after_mb_s << " MB/s  (" << decode.Speedup() << "x)\n";

  const CleanerResult cleaner = BenchCleaner(smoke);
  std::cout << "cleaner:        " << cleaner.segments_cleaned << " segments, "
            << cleaner.blocks_examined << " blocks examined in " << cleaner.host_seconds
            << "s host (" << cleaner.BlocksExaminedPerSecond() << " blocks/s)\n";

  const bool sane = crc.Speedup() >= 1.0 && flush.Speedup() >= 1.0 && cleaner.ok;

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"writepath\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
  PrintSection(out, "crc32", crc, "bytewise", "slice8", false);
  PrintSection(out, "segment_flush", flush, "copy_path", "zero_copy", false);
  PrintSection(out, "decode_summary", decode, "clone", "in_place", false);
  out << "  \"cleaner\": {\n"
      << "    \"segments_cleaned\": " << cleaner.segments_cleaned << ",\n"
      << "    \"blocks_examined\": " << cleaner.blocks_examined << ",\n"
      << "    \"live_blocks_copied\": " << cleaner.live_blocks_copied << ",\n"
      << "    \"host_seconds\": " << cleaner.host_seconds << ",\n"
      << "    \"blocks_examined_per_s\": " << cleaner.BlocksExaminedPerSecond() << "\n"
      << "  }\n"
      << "}\n";
  if (!metrics_path.empty()) {
    // The counters the measured runs just produced, next to their timing
    // JSON — the "why" behind the wall-clock numbers.
    std::ofstream metrics_file(metrics_path);
    metrics_file << obs::Registry().ToJson();
    std::cout << "metrics: " << metrics_path << "\n";
  }
  std::cout << "report: " << out_path << "\n"
            << "Shape check: " << (sane ? "PASS" : "WARN")
            << " (zero-copy and slice8 must not be slower than the paths they replace)\n";
  return sane ? 0 : 1;
}

}  // namespace
}  // namespace logfs

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_PR2.json";
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--smoke] [--out PATH] [--metrics-out PATH]\n";
      return 2;
    }
  }
  return logfs::RunBench(smoke, out_path, metrics_path);
}
