// Ablation: segment size vs log write bandwidth (DESIGN.md ABL1).
//
// Section 4.3: "the sequential log abstraction of LFS need not be totally
// sequential on disk. What really matters is that the log is written in
// large enough pieces to support I/O at near-maximum disk bandwidth. This
// can be achieved by sizing segments so that the disk seek at the start of
// a segment write is amortized across a long data transfer time. The test
// presented in Section 5 used a segment size of one megabyte."
//
// Part 1 isolates the mechanism on the raw device: write 32 MB as
// segment-sized transfers into *alternating* free slots (the worst-case
// scattered free list), so every transfer pays one positioning delay. This
// is exactly the seek-amortization trade the paper sizes segments around.
//
// Part 2 confirms the consequence end-to-end: the same small-file creation
// workload through the full LFS stack at each segment size, reporting the
// write cost per megabyte of flushed data.
#include <iostream>

#include "src/disk/memory_disk.h"
#include "src/sim/sim_clock.h"
#include "src/workload/benchmarks.h"
#include "src/workload/report.h"
#include "src/workload/testbed.h"

namespace logfs {
namespace {

int RunBench() {
  std::cout << "=== Ablation ABL1 part 1: raw transfers into alternating "
               "segment-sized holes ===\n";
  {
    TablePrinter table({"segment", "effective MB/s", "% of disk max"});
    const uint64_t total_bytes = 32ull << 20;
    for (uint32_t segment_kb : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
      SimClock clock;
      MemoryDisk disk((256ull << 20) / kSectorSize, &clock);
      const uint64_t segment_sectors = segment_kb * 1024 / kSectorSize;
      std::vector<std::byte> segment(segment_kb * 1024, std::byte{0x11});
      const double t0 = clock.Now();
      uint64_t position = 0;
      for (uint64_t written = 0; written < total_bytes; written += segment.size()) {
        if (!disk.WriteSectors(position, segment).ok()) {
          std::cerr << "device write failed\n";
          return 1;
        }
        position += 2 * segment_sectors;  // Skip a live segment: forced seek.
      }
      const double elapsed = clock.Now() - t0;
      const double mb_s = total_bytes / 1048576.0 / elapsed;
      table.AddRow({std::to_string(segment_kb) + " KB", TablePrinter::Fixed(mb_s, 2),
                    TablePrinter::Fixed(100.0 * mb_s / (1.3e6 / 1048576.0), 1) + "%"});
    }
    table.Print(std::cout);
    std::cout << "\nExpected shape: with one positioning delay (short seek + half a\n"
              << "rotation, ~11 ms) per transfer, small segments lose a sizeable\n"
              << "bandwidth fraction; >= 1 MB segments (the paper's choice) exceed\n"
              << "98% of the disk maximum — the seek is amortized.\n\n";
  }

  std::cout << "=== Ablation ABL1 part 2: full-LFS small-file flush cost per segment "
               "size ===\n";
  {
    TablePrinter table({"segment", "create files/s", "disk s per flushed MB"});
    for (uint32_t segment_kb : {64u, 256u, 1024u, 4096u}) {
      TestbedParams params;
      params.disk_bytes = 128ull << 20;  // Small segments cap the usage table.
      params.lfs.segment_size = segment_kb * 1024;
      auto bed = MakeLfsTestbed(params);
      if (!bed.ok()) {
        std::cerr << "testbed setup failed\n";
        return 1;
      }
      SmallFileParams small;
      small.num_files = 4000;
      small.file_size = 1024;
      auto phases = RunSmallFileBenchmark(*bed, small);
      if (!phases.ok()) {
        std::cerr << "benchmark failed: " << phases.status().ToString() << "\n";
        return 1;
      }
      const DiskStats& stats = bed->disk->stats();
      const double flushed_mb = stats.sectors_written * 512.0 / 1048576.0;
      table.AddRow({std::to_string(segment_kb) + " KB",
                    TablePrinter::Fixed((*phases)[0].OpsPerSecond(), 1),
                    TablePrinter::Fixed(flushed_mb > 0 ? stats.busy_seconds / flushed_mb : 0,
                                        3)});
    }
    table.Print(std::cout);
    std::cout << "\nOn a fresh (contiguous) log the segment size barely matters — the\n"
              << "cost appears once the free list fragments (part 1). The paper's 1 MB\n"
              << "choice buys worst-case immunity at no fresh-log cost.\n";
  }
  return 0;
}

}  // namespace
}  // namespace logfs

int main() { return logfs::RunBench(); }
