// Crash-state exploration throughput: how many candidate post-crash images
// the explorer can materialize, remount, and judge per second, and how the
// state count scales with workload length.
//
// Not a paper figure — this is tooling overhead measurement: exploration
// cost decides how large a workload the crash suite can sweep in CI.
#include <chrono>
#include <iostream>

#include "src/crashsim/explorer.h"
#include "src/workload/report.h"
#include "src/workload/trace.h"

namespace logfs {
namespace {

int RunBench() {
  std::cout << "=== Crash-state exploration throughput ===\n";
  TablePrinter table({"workload ops", "journal writes", "states", "violations",
                      "seconds", "states/s"});

  for (int ops : {10, 20, 40}) {
    std::vector<TraceOp> workload = GenerateCrashTrace(ops, /*seed=*/7);
    ExploreBudget budget;
    budget.max_boundaries = 80;
    const auto start = std::chrono::steady_clock::now();
    auto report = ExploreCrashStates(workload, budget);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (!report.ok()) {
      std::cerr << "exploration failed at " << ops << " ops: "
                << report.status().ToString() << "\n";
      return 1;
    }
    table.AddRow({TablePrinter::Int(static_cast<uint64_t>(workload.size())),
                  TablePrinter::Int(report->journal_writes),
                  TablePrinter::Int(report->states_checked),
                  TablePrinter::Int(report->violations),
                  TablePrinter::Fixed(seconds, 2),
                  TablePrinter::Fixed(report->states_checked / seconds, 0)});
    if (!report->ok()) {
      std::cerr << "unexpected invariant violations — run the crashsim tests\n";
      return 1;
    }
  }
  table.Print(std::cout);
  std::cout << "\nEach state is a full image materialization + remount + fsck +\n"
            << "durability audit under two recovery modes; cost grows with the\n"
            << "journal (bigger images, longer roll-forward scans).\n";
  return 0;
}

}  // namespace
}  // namespace logfs

int main() { return logfs::RunBench(); }
