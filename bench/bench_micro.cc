// Google-benchmark microbenchmarks of logfs hot paths: CRC32, summary
// encode/decode, inode codec, directory-block operations, inode-map
// updates, and buffer-cache hits. These measure *host* CPU cost (not
// simulated time) and guard against regressions in the mechanisms every
// simulated second depends on.
#include <benchmark/benchmark.h>

#include <vector>

#include "src/cache/buffer_cache.h"
#include "src/fsbase/dirent.h"
#include "src/fsbase/inode.h"
#include "src/lfs/lfs_blocks.h"
#include "src/lfs/lfs_inode_map.h"
#include "src/lfs/lfs_segment.h"
#include "src/util/crc32.h"

namespace logfs {
namespace {

void BM_Crc32(benchmark::State& state) {
  std::vector<std::byte> data(state.range(0), std::byte{0xA5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(4096)->Arg(1 << 20);

void BM_SummaryEncode(benchmark::State& state) {
  SegmentSummary summary;
  summary.seq = 42;
  const size_t n = SummaryCapacity(4096);
  for (size_t i = 0; i < n; ++i) {
    summary.entries.push_back(SummaryEntry{BlockKind::kData, 7, 1, static_cast<int64_t>(i)});
  }
  std::vector<std::byte> block(4096);
  std::vector<std::byte> content(n * 4096, std::byte{0x11});
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeSummary(summary, block, content).ok());
  }
}
BENCHMARK(BM_SummaryEncode);

void BM_SummaryDecode(benchmark::State& state) {
  SegmentSummary summary;
  summary.seq = 42;
  const size_t n = SummaryCapacity(4096);
  for (size_t i = 0; i < n; ++i) {
    summary.entries.push_back(SummaryEntry{BlockKind::kData, 7, 1, static_cast<int64_t>(i)});
  }
  std::vector<std::byte> block(4096);
  std::vector<std::byte> content(n * 4096, std::byte{0x11});
  (void)EncodeSummary(summary, block, content);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecodeSummary(block, content).ok());
  }
}
BENCHMARK(BM_SummaryDecode);

void BM_InodeCodecRoundTrip(benchmark::State& state) {
  Inode inode;
  inode.type = FileType::kRegular;
  inode.size = 123456;
  std::vector<std::byte> slot(kInodeDiskSize);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeInode(inode, slot).ok());
    benchmark::DoNotOptimize(DecodeInode(slot).ok());
  }
}
BENCHMARK(BM_InodeCodecRoundTrip);

void BM_InodeBlockEncode(benchmark::State& state) {
  std::vector<PackedInode> inodes(InodesPerLfsBlock(4096));
  for (size_t i = 0; i < inodes.size(); ++i) {
    inodes[i].ino = static_cast<InodeNum>(i + 1);
    inodes[i].inode.type = FileType::kRegular;
  }
  std::vector<std::byte> block(4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeInodeBlock(inodes, block).ok());
  }
}
BENCHMARK(BM_InodeBlockEncode);

void BM_DirBlockInsertFindRemove(benchmark::State& state) {
  std::vector<std::byte> block(4096);
  for (auto _ : state) {
    DirBlockView view(block);
    (void)view.InitEmpty();
    for (int i = 0; i < 40; ++i) {
      (void)view.Insert(static_cast<InodeNum>(i + 1), FileType::kRegular,
                        "file" + std::to_string(i));
    }
    benchmark::DoNotOptimize(view.Find("file20").ok());
    for (int i = 0; i < 40; ++i) {
      (void)view.Remove("file" + std::to_string(i));
    }
  }
}
BENCHMARK(BM_DirBlockInsertFindRemove);

void BM_InodeMapUpdate(benchmark::State& state) {
  InodeMap imap(65536, 4096);
  for (int i = 0; i < 1000; ++i) {
    (void)imap.Allocate(1);
  }
  InodeNum ino = 1;
  for (auto _ : state) {
    imap.SetLocation(ino, ino * 8, static_cast<uint16_t>(ino % 15));
    benchmark::DoNotOptimize(imap.Get(ino).block_addr);
    ino = ino % 1000 + 1;
  }
}
BENCHMARK(BM_InodeMapUpdate);

void BM_CacheHit(benchmark::State& state) {
  CachePolicy policy;
  policy.capacity_blocks = 1024;
  BufferCache cache(4096, policy, nullptr);
  for (uint64_t i = 0; i < 512; ++i) {
    (void)cache.Acquire(BlockKey{1, i}, [](std::span<std::byte> out) {
      std::fill(out.begin(), out.end(), std::byte{0});
      return OkStatus();
    });
  }
  uint64_t index = 0;
  for (auto _ : state) {
    auto ref = cache.AcquireIfPresent(BlockKey{1, index});
    benchmark::DoNotOptimize(ref.get());
    index = (index + 1) % 512;
  }
}
BENCHMARK(BM_CacheHit);

}  // namespace
}  // namespace logfs

BENCHMARK_MAIN();
