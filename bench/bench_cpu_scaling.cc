// Section 3.1 reproduction: create/delete latency vs CPU speed.
//
// "A .9-MIPS DEC MicroVaxII using the BSD file system can create and delete
//  an empty file in 100 milliseconds. A 14-MIPS DEC DecStation 3100 using
//  the same file system can create and delete an empty file in 80
//  milliseconds. Because of the synchronous disk I/O, an order-of-magnitude
//  increase in CPU speeds causes only a 20 percent increase in program
//  speed!"
//
// Shape to reproduce: FFS latency is nearly flat in CPU speed (disk-bound,
// synchronous); LFS latency shrinks roughly linearly with CPU speed
// (decoupled from the disk).
#include <iostream>

#include "src/workload/benchmarks.h"
#include "src/workload/report.h"
#include "src/workload/testbed.h"

namespace logfs {
namespace {

int RunBench() {
  std::cout << "=== Section 3.1: create+delete latency vs CPU MIPS ===\n";
  TablePrinter table({"MIPS", "FFS ms/pair", "LFS ms/pair", "FFS speedup", "LFS speedup"});
  const int iterations = 500;

  double ffs_base = 0.0;
  double lfs_base = 0.0;
  for (double mips : {0.9, 2.0, 5.0, 14.0, 50.0}) {
    TestbedParams params;
    params.mips = mips;
    auto ffs_bed = MakeFfsTestbed(params);
    auto lfs_bed = MakeLfsTestbed(params);
    if (!ffs_bed.ok() || !lfs_bed.ok()) {
      std::cerr << "testbed setup failed\n";
      return 1;
    }
    auto ffs = RunCreateDeleteLatency(*ffs_bed, iterations);
    auto lfs = RunCreateDeleteLatency(*lfs_bed, iterations);
    if (!ffs.ok() || !lfs.ok()) {
      std::cerr << "latency run failed\n";
      return 1;
    }
    if (ffs_base == 0.0) {
      ffs_base = ffs->seconds_per_pair;
      lfs_base = lfs->seconds_per_pair;
    }
    table.AddRow({TablePrinter::Fixed(mips, 1),
                  TablePrinter::Fixed(ffs->seconds_per_pair * 1e3, 2),
                  TablePrinter::Fixed(lfs->seconds_per_pair * 1e3, 2),
                  TablePrinter::Fixed(ffs_base / ffs->seconds_per_pair, 2) + "x",
                  TablePrinter::Fixed(lfs_base / lfs->seconds_per_pair, 2) + "x"});
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference: 0.9 -> 14 MIPS gave BSD FFS only a 1.25x speedup\n"
               "(100 ms -> 80 ms) because creates/deletes wait on synchronous disk\n"
               "I/O. LFS latency should scale nearly linearly with CPU speed.\n";
  return 0;
}

}  // namespace
}  // namespace logfs

int main() { return logfs::RunBench(); }
