// Shard-scaling bench (PR 7): aggregate write throughput of the sharded
// multi-log under a genuinely concurrent front-end, swept over shards
// {1,2,4} x threads {1,2,4}. Each point formats a fresh volume, drives the
// mixed create/write/read/fsync workload from N OS threads through the
// router, and reports HOST wall-clock throughput — this is the bench where
// real parallelism (per-shard locks, per-shard segment writers) shows up,
// so simulated time would miss the point entirely.
//
// The device is a MemoryDisk wrapped in HostLatencyDisk, which converts
// each request's service time (fixed positioning cost + transfer at the
// modelled bandwidth) into a real wall-clock sleep. That is the resource
// multiple logs exist to parallelize: while one log's flush occupies its
// device, the shard mutex is held and every thread routed to that shard
// waits, but flushes on OTHER shards overlap in wall time. Device waits
// overlap even on a single-core host (a sleeping thread needs no CPU), so
// the curve isolates the sharding win from host core count. With one shard
// every thread serializes behind one log's device; with four shards the
// per-file placement spreads the same offered load over four independent
// logs. Emits BENCH_PR7.json.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/disk/block_device.h"
#include "src/disk/memory_disk.h"
#include "src/lfs/sharded_lfs.h"
#include "src/sim/cpu_model.h"
#include "src/sim/sim_clock.h"
#include "src/workload/concurrent_driver.h"

namespace logfs {
namespace {

// The modelled device: 250us per request (command + positioning) plus
// transfer at 200 MB/s — a queue-depth-1 disk in the spirit of the paper's
// analysis, fast enough that a full sweep stays in seconds. One segment
// flush (512 KB) services in ~2.8ms.
constexpr double kDeviceRequestSeconds = 250e-6;
constexpr double kDeviceSecondsPerByte = 1.0 / (200.0 * 1e6);

// Decorator that makes device service time REAL: after delegating to the
// in-memory store it blocks the calling thread for the modelled service
// time. No lock is held here — concurrent requests from different shards
// sleep concurrently, exactly like independent devices under a stripe.
// (The caller's shard mutex IS held across the sleep, which is the point:
// a log whose device is busy stalls only the threads bound to that log.)
class HostLatencyDisk : public BlockDevice {
 public:
  explicit HostLatencyDisk(BlockDevice* base) : base_(base) {}

  Status ReadSectors(uint64_t first, std::span<std::byte> out,
                     IoOptions options = {}) override {
    Status s = base_->ReadSectors(first, out, options);
    Block(out.size());
    return s;
  }
  Status WriteSectors(uint64_t first, std::span<const std::byte> data,
                      IoOptions options = {}) override {
    Status s = base_->WriteSectors(first, data, options);
    Block(data.size());
    return s;
  }
  Status ReadSectorsV(uint64_t first, std::span<const std::span<std::byte>> bufs,
                      IoOptions options = {}) override {
    Status s = base_->ReadSectorsV(first, bufs, options);
    Block(IoVecBytes(bufs));
    return s;
  }
  Status WriteSectorsV(uint64_t first, std::span<const std::span<const std::byte>> bufs,
                       IoOptions options = {}) override {
    Status s = base_->WriteSectorsV(first, bufs, options);
    Block(IoVecBytes(bufs));
    return s;
  }
  Status Flush() override { return base_->Flush(); }
  uint64_t sector_count() const override { return base_->sector_count(); }
  const DiskStats& stats() const override { return base_->stats(); }
  void ResetStats() override { base_->ResetStats(); }

 private:
  static void Block(size_t bytes) {
    std::this_thread::sleep_for(std::chrono::duration<double>(
        kDeviceRequestSeconds + static_cast<double>(bytes) * kDeviceSecondsPerByte));
  }

  BlockDevice* base_;
};

struct Point {
  uint32_t shards = 0;
  uint32_t threads = 0;
  uint64_t ops = 0;
  uint64_t writes = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
  uint64_t fsyncs = 0;
  uint64_t errors = 0;
  double wall_seconds = 0.0;
  double write_mb_per_s = 0.0;
  double ops_per_s = 0.0;
};

int RunBench(bool smoke, const std::string& out_path) {
  std::cout << "=== Shard scaling bench (" << (smoke ? "smoke" : "full")
            << "): write throughput vs shards x threads ===\n";

  const std::vector<uint32_t> shard_sweep =
      smoke ? std::vector<uint32_t>{1, 4} : std::vector<uint32_t>{1, 2, 4};
  const std::vector<uint32_t> thread_sweep =
      smoke ? std::vector<uint32_t>{1, 4} : std::vector<uint32_t>{1, 2, 4};
  const uint32_t ops_per_thread = smoke ? 400 : 2500;

  LfsParams params;
  params.max_inodes = 4096;
  params.segment_size = 1 << 19;
  params.clean_start_segments = 3;
  params.clean_stop_segments = 5;
  params.reserved_segments = 2;

  std::vector<Point> points;
  for (uint32_t shards : shard_sweep) {
    for (uint32_t threads : thread_sweep) {
      SimClock clock;
      CpuModel cpu(&clock, 10.0);
      MemoryDisk disk(262144, &clock);  // 128 MB.
      // Format runs against the raw store (volume initialization is not the
      // measured workload); the mounted file system sees the latency model.
      if (Status s = ShardedLfs::Format(&disk, params, shards); !s.ok()) {
        std::cerr << "format failed: " << s.ToString() << "\n";
        return 1;
      }
      HostLatencyDisk slow_disk(&disk);
      auto fs = ShardedLfs::Mount(&slow_disk, &clock, &cpu);
      if (!fs.ok()) {
        std::cerr << "mount failed: " << fs.status().ToString() << "\n";
        return 1;
      }

      ConcurrentLoadOptions load;
      load.threads = threads;
      load.ops_per_thread = ops_per_thread;
      load.names_per_thread = 64;
      load.max_file_blocks = 4;
      load.fsync_interval = 8;
      // One seed for the whole sweep: the per-thread RNG already mixes the
      // thread index, and varying the seed per point would compare
      // different op mixes across points.
      load.seed = 7;
      auto report = RunConcurrentLoad(fs->get(), load);
      if (!report.ok()) {
        std::cerr << "load failed: " << report.status().ToString() << "\n";
        return 1;
      }
      if (!report->ok()) {
        std::cerr << "workload errors at shards=" << shards << " threads=" << threads
                  << ": "
                  << (report->problems.empty() ? "(unlisted)" : report->problems.front())
                  << "\n";
        return 1;
      }

      Point pt;
      pt.shards = shards;
      pt.threads = threads;
      pt.ops = static_cast<uint64_t>(threads) * ops_per_thread;
      pt.writes = report->writes;
      pt.bytes_written = report->bytes_written;
      pt.bytes_read = report->bytes_read;
      pt.fsyncs = report->fsyncs;
      pt.errors = report->unexpected_errors;
      pt.wall_seconds = report->wall_seconds;
      pt.write_mb_per_s = pt.wall_seconds > 0
                              ? static_cast<double>(pt.bytes_written) / 1e6 / pt.wall_seconds
                              : 0.0;
      pt.ops_per_s =
          pt.wall_seconds > 0 ? static_cast<double>(pt.ops) / pt.wall_seconds : 0.0;
      points.push_back(pt);
      std::cout << "  shards=" << shards << " threads=" << threads << " ops=" << pt.ops
                << " write_MB/s=" << pt.write_mb_per_s << " ops/s=" << pt.ops_per_s
                << " (" << pt.wall_seconds << "s host)\n";
    }
  }

  // The headline ratio the acceptance gate reads: 4 shards / 4 threads over
  // 1 shard / 1 thread... and the fairer same-offered-load comparison, 4x4
  // over 1 shard / 4 threads (pure sharding win at fixed concurrency).
  auto find = [&](uint32_t s, uint32_t t) -> const Point* {
    for (const Point& p : points) {
      if (p.shards == s && p.threads == t) {
        return &p;
      }
    }
    return nullptr;
  };
  double speedup_4x4_vs_1x1 = 0.0;
  double speedup_4x4_vs_1x4 = 0.0;
  const Point* p44 = find(4, 4);
  const Point* p11 = find(1, 1);
  const Point* p14 = find(1, 4);
  if (p44 != nullptr && p11 != nullptr && p11->write_mb_per_s > 0) {
    speedup_4x4_vs_1x1 = p44->write_mb_per_s / p11->write_mb_per_s;
  }
  if (p44 != nullptr && p14 != nullptr && p14->write_mb_per_s > 0) {
    speedup_4x4_vs_1x4 = p44->write_mb_per_s / p14->write_mb_per_s;
  }
  std::cout << "  speedup 4x4 vs 1x1: " << speedup_4x4_vs_1x1
            << "   4x4 vs 1x4: " << speedup_4x4_vs_1x4 << "\n";

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"shard_scaling\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"workload\": {\"ops_per_thread\": " << ops_per_thread
      << ", \"names_per_thread\": 64, \"max_file_blocks\": 4,"
      << " \"write_block_bytes\": 4096, \"fsync_interval\": 8},\n"
      << "  \"device_model\": {\"per_request_us\": " << kDeviceRequestSeconds * 1e6
      << ", \"transfer_mb_per_s\": " << 1.0 / kDeviceSecondsPerByte / 1e6 << "},\n"
      << "  \"speedup_4x4_vs_1x1\": " << speedup_4x4_vs_1x1 << ",\n"
      << "  \"speedup_4x4_vs_1x4\": " << speedup_4x4_vs_1x4 << ",\n"
      << "  \"points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    out << "    {\"shards\": " << p.shards << ", \"threads\": " << p.threads
        << ", \"ops\": " << p.ops << ", \"writes\": " << p.writes
        << ", \"bytes_written\": " << p.bytes_written
        << ", \"bytes_read\": " << p.bytes_read << ", \"fsyncs\": " << p.fsyncs
        << ", \"errors\": " << p.errors << ", \"wall_seconds\": " << p.wall_seconds
        << ", \"write_mb_per_s\": " << p.write_mb_per_s
        << ", \"ops_per_s\": " << p.ops_per_s << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace logfs

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_PR7.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--smoke] [--out PATH]\n";
      return 2;
    }
  }
  return logfs::RunBench(smoke, out_path);
}
