// Flight-recorder bench (PR 5): drives a phased workload — create burst,
// overwrite churn, delete + clean, read-back — with the telemetry sampler
// running on a fine cadence, and emits BENCH_PR5.json carrying one telemetry
// snapshot per phase: the ring's absolute counter values, current gauges,
// and the per-op latency-attribution counters the phase produced.
//
// Also measures the recorder's own cost, since a flight recorder that slows
// the plane is a bad trade: host nanoseconds per SampleNow() and per
// SerializeRing() at the configured capacity, reported in the JSON.
//
// With LOGFS_METRICS=OFF everything still runs (the sampler is a no-op);
// the report then carries empty snapshots and "metrics_enabled": false,
// which is exactly what tools/check_metrics_off.sh wants to see build.
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/disk/memory_disk.h"
#include "src/fsbase/path.h"
#include "src/lfs/lfs_blackbox.h"
#include "src/lfs/lfs_file_system.h"
#include "src/obs/metrics.h"
#include "src/obs/sampler.h"
#include "src/sim/sim_clock.h"

namespace logfs {
namespace {

double HostNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct PhaseSnapshot {
  std::string name;
  double sim_seconds = 0.0;
  size_t ring_samples = 0;
  uint64_t total_samples = 0;
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
};

// One telemetry snapshot: the ring's view of the world at the phase
// boundary (absolute counter values reconstructed from base + deltas, so
// this also exercises the delta decoding every report consumer relies on).
PhaseSnapshot Snapshot(const std::string& name, LfsFileSystem& fs, double now) {
  PhaseSnapshot snap;
  snap.name = name;
  snap.sim_seconds = now;
  obs::TelemetrySampler& sampler = fs.telemetry();
  sampler.SampleNow(now);
  const obs::TelemetryRing ring = sampler.Ring();
  snap.ring_samples = ring.samples.size();
  snap.total_samples = sampler.total_samples();
  if (ring.samples.empty()) {
    return snap;
  }
  const size_t last = ring.samples.size() - 1;
  for (size_t c = 0; c < ring.counter_names.size(); ++c) {
    const uint64_t value = ring.CounterAt(last, c);
    if (value > 0) {
      snap.counters.emplace_back(ring.counter_names[c], value);
    }
  }
  const obs::TelemetrySample& sample = ring.samples[last];
  for (size_t g = 0; g < ring.gauge_names.size(); ++g) {
    if (g < sample.gauges.size() && !std::isnan(sample.gauges[g])) {
      snap.gauges.emplace_back(ring.gauge_names[g], sample.gauges[g]);
    }
  }
  return snap;
}

void PrintSnapshot(std::ostream& os, const PhaseSnapshot& snap, bool last) {
  os << "    {\n"
     << "      \"phase\": \"" << snap.name << "\",\n"
     << "      \"sim_seconds\": " << snap.sim_seconds << ",\n"
     << "      \"ring_samples\": " << snap.ring_samples << ",\n"
     << "      \"total_samples\": " << snap.total_samples << ",\n"
     << "      \"counters\": {";
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "        \"" << snap.counters[i].first
       << "\": " << snap.counters[i].second;
  }
  os << (snap.counters.empty() ? "},\n" : "\n      },\n") << "      \"gauges\": {";
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "        \"" << snap.gauges[i].first << "\": ";
    if (std::isfinite(snap.gauges[i].second)) {
      os << snap.gauges[i].second;
    } else {
      os << "null";
    }
  }
  os << (snap.gauges.empty() ? "}\n" : "\n      }\n") << "    }" << (last ? "\n" : ",\n");
}

int RunBench(bool smoke, const std::string& out_path) {
  std::cout << "=== Flight-recorder telemetry bench (" << (smoke ? "smoke" : "full")
            << ") ===\n";

  const int files = smoke ? 60 : 400;
  SimClock clock;
  MemoryDisk disk(131072, &clock);  // 64 MB volume.
  LfsParams params;
  params.max_inodes = 2048;
  if (!LfsFileSystem::Format(&disk, params).ok()) {
    std::cerr << "format failed\n";
    return 1;
  }
  LfsFileSystem::Options options;
  options.telemetry_interval_seconds = 0.01;  // Fine cadence: many samples.
  options.telemetry_capacity = 128;
  auto mounted = LfsFileSystem::Mount(&disk, &clock, nullptr, options);
  if (!mounted.ok()) {
    std::cerr << "mount failed: " << mounted.status().ToString() << "\n";
    return 1;
  }
  LfsFileSystem& fs = **mounted;
  PathFs paths(&fs);
  std::vector<PhaseSnapshot> snapshots;
  std::vector<std::byte> payload(8192, std::byte{0x61});
  std::vector<std::byte> churn(8192, std::byte{0x62});

  // Phase 1: create burst. Tick between ops so cadence samples land.
  if (!paths.MkdirAll("/bench").ok()) {
    return 1;
  }
  for (int i = 0; i < files; ++i) {
    if (!paths.WriteFile("/bench/f" + std::to_string(i), payload).ok()) {
      std::cerr << "create failed at " << i << "\n";
      return 1;
    }
    (void)fs.Tick();
  }
  if (!fs.Sync().ok()) {
    return 1;
  }
  snapshots.push_back(Snapshot("create", fs, clock.Now()));

  // Phase 2: overwrite churn over half the files.
  for (int i = 0; i < files; i += 2) {
    if (!paths.WriteFile("/bench/f" + std::to_string(i), churn).ok()) {
      return 1;
    }
    (void)fs.Tick();
  }
  if (!fs.Sync().ok()) {
    return 1;
  }
  snapshots.push_back(Snapshot("overwrite", fs, clock.Now()));

  // Phase 3: delete every other file and clean.
  for (int i = 1; i < files; i += 2) {
    (void)paths.Unlink("/bench/f" + std::to_string(i));
    (void)fs.Tick();
  }
  if (!fs.Sync().ok()) {
    return 1;
  }
  auto cleaned = fs.CleanNow(8);
  if (!cleaned.ok()) {
    std::cerr << "clean failed: " << cleaned.status().ToString() << "\n";
    return 1;
  }
  snapshots.push_back(Snapshot("clean", fs, clock.Now()));

  // Phase 4: read-back of the survivors.
  uint64_t read_bytes = 0;
  for (int i = 0; i < files; i += 2) {
    auto bytes = paths.ReadFile("/bench/f" + std::to_string(i));
    if (!bytes.ok()) {
      std::cerr << "read failed: " << bytes.status().ToString() << "\n";
      return 1;
    }
    read_bytes += bytes->size();
    (void)fs.Tick();
  }
  snapshots.push_back(Snapshot("readback", fs, clock.Now()));

  // Recorder self-cost on the host. Timed over the live, fully-populated
  // sampler so the numbers reflect the configured capacity.
  const int reps = smoke ? 200 : 2000;
  double t0 = HostNow();
  for (int i = 0; i < reps; ++i) {
    fs.telemetry().SampleNow(clock.Now());
  }
  const double sample_ns = (HostNow() - t0) / reps * 1e9;
  t0 = HostNow();
  size_t blob_bytes = 0;
  for (int i = 0; i < reps; ++i) {
    blob_bytes = fs.telemetry().SerializeRing(64 * 1024).size();
  }
  const double encode_ns = (HostNow() - t0) / reps * 1e9;

  // Checkpoint once more, then prove the black box round-trips from the raw
  // image (the forensic path `lfs_inspect blackbox` uses).
  if (!fs.Sync().ok()) {
    return 1;
  }
  bool blackbox_ok = true;
  if (obs::kMetricsEnabled) {
    auto recovered = RecoverBlackBoxFromImage(disk.MutableRawImage());
    blackbox_ok = recovered.ok() && !recovered->ring.samples.empty();
  }

  std::cout << "phases: ";
  for (const PhaseSnapshot& snap : snapshots) {
    std::cout << snap.name << "(" << snap.ring_samples << " samples) ";
  }
  std::cout << "\nsampler: " << sample_ns << " ns/sample, " << encode_ns
            << " ns/encode (" << blob_bytes << " B blob)\n"
            << "black box round-trip: " << (blackbox_ok ? "PASS" : "FAIL") << "\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"telemetry\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"metrics_enabled\": " << (obs::kMetricsEnabled ? "true" : "false") << ",\n"
      << "  \"files\": " << files << ",\n"
      << "  \"read_bytes\": " << read_bytes << ",\n"
      << "  \"sampler_ns_per_sample\": " << sample_ns << ",\n"
      << "  \"sampler_ns_per_encode\": " << encode_ns << ",\n"
      << "  \"encoded_blob_bytes\": " << blob_bytes << ",\n"
      << "  \"blackbox_roundtrip\": " << (blackbox_ok ? "true" : "false") << ",\n"
      << "  \"phases\": [\n";
  for (size_t i = 0; i < snapshots.size(); ++i) {
    PrintSnapshot(out, snapshots[i], i + 1 == snapshots.size());
  }
  out << "  ]\n}\n";
  std::cout << "report: " << out_path << "\n";
  return blackbox_ok ? 0 : 1;
}

}  // namespace
}  // namespace logfs

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_PR5.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--smoke] [--out PATH]\n";
      return 2;
    }
  }
  return logfs::RunBench(smoke, out_path);
}
