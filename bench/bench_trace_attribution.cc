// Trace-attribution bench (PR 8): where does a request's latency actually
// go, and what does finding out cost?
//
// Three sections, one JSON report (BENCH_PR8.json):
//
//   serve_points — a client-count sweep of the lossy shared-file cluster.
//     Every completed request is traced end-to-end, its critical path
//     partitioned into the eight canonical classes, and the sweep reports
//     each layer's share of total latency (network / retransmit /
//     dedup_parked / lease_wait / disk / cleaner / cache) plus the SLO view
//     (p50/p99, violations against a 50 ms target) and the wasted-attempt
//     count. This is the chart that shows contention moving: at 2 clients
//     latency is disk and wire; at 16 it is lease waits.
//
//   shard_points — a shard-count sweep of the threaded sharded mount, all
//     threads hammering the same two hot files under TraceRoot. Reports the
//     shard_lock share of the critical path as shards grow (the lock time
//     the router's sharding exists to shrink).
//
//   tracer_self_cost — the recorder's own price: host ns per recorded span
//     with tracing enabled, and host ns per op with the runtime gate off
//     (the mint-check-skip path, which is what production pays when tracing
//     is dormant). Compiled out (LOGFS_METRICS=OFF) both are ~0 by
//     construction.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/lfs/sharded_lfs.h"
#include "src/obs/critical_path.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_context.h"
#include "src/obs/tracer.h"
#include "src/serve/cluster.h"
#include "src/serve/driver.h"
#include "src/workload/serve_load.h"

namespace logfs {
namespace {

double HostNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = std::min(sorted.size() - 1,
                              static_cast<size_t>(p * static_cast<double>(sorted.size())));
  return sorted[idx];
}

struct ClassShares {
  double seconds[obs::kPathClassCount] = {};
  double total = 0.0;

  void Add(const obs::Breakdown& b) {
    for (size_t c = 0; c < obs::kPathClassCount; ++c) seconds[c] += b.seconds[c];
    total += b.total_seconds;
  }
  double Share(size_t c) const { return total > 0 ? seconds[c] / total : 0.0; }
};

void AppendShares(std::ostream& out, const ClassShares& shares) {
  out << "{";
  for (size_t c = 0; c < obs::kPathClassCount; ++c) {
    out << (c ? ", " : "") << "\"" << obs::PathClassName(static_cast<obs::PathClass>(c))
        << "\": " << shares.Share(c);
  }
  out << "}";
}

struct ServePoint {
  size_t clients = 0;
  uint64_t ops = 0;
  size_t traces = 0;
  double sim_seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t slo_violations = 0;
  uint64_t wasted_attempts = 0;
  ClassShares shares;
  double host_seconds = 0.0;
};

int RunServeSweep(bool smoke, std::vector<ServePoint>* points) {
  const std::vector<size_t> sweep =
      smoke ? std::vector<size_t>{2, 4} : std::vector<size_t>{2, 4, 8, 16};
  const uint64_t ops_total = smoke ? 120 : 1200;
  constexpr double kSloTargetSeconds = 0.050;

  for (size_t n : sweep) {
    const double host_start = HostNow();
    obs::Registry().ResetAll();
    obs::Tracer().Clear();

    serve::ServeClusterParams params;
    params.clients = n;
    params.transport.drop_probability = 0.05;
    auto cluster = serve::ServeCluster::Create(params);
    if (!cluster.ok()) {
      std::cerr << "cluster create failed: " << cluster.status().ToString() << "\n";
      return 1;
    }
    serve::ServeCluster& c = **cluster;

    ServeLoadParams lp;
    lp.clients = n;
    lp.files = 8;
    lp.zipf_s = 0.9;
    lp.ops_per_client = std::max<uint64_t>(8, ops_total / n);
    lp.write_fraction = 0.4;
    lp.io_size = 4096;
    lp.mean_think_seconds = 0.01;
    lp.seed = 23;
    auto stats = serve::DriveSharedLoad(c, MakeSharedLoad(lp));
    if (!stats.ok()) {
      std::cerr << "drive failed at " << n << " clients: " << stats.status().ToString()
                << "\n";
      return 1;
    }
    if (c.shadow().violation_count() != 0) {
      std::cerr << "shadow violation at " << n << " clients\n";
      return 1;
    }

    ServePoint pt;
    pt.clients = n;
    pt.ops = stats->ops_completed;
    pt.sim_seconds = c.clock()->Now();

    const std::vector<obs::TraceTree> trees =
        obs::AssembleTraceTrees(obs::Tracer().Events());
    obs::SloTracker slo(kSloTargetSeconds);
    std::vector<double> latencies;
    for (const obs::TraceTree& tree : trees) {
      const obs::Breakdown b = obs::AnalyzeCriticalPath(tree);
      if (b.category != "serve.op") continue;
      ++pt.traces;
      pt.shares.Add(b);
      slo.Observe(b);
      latencies.push_back(b.total_seconds);
      if (b.total_seconds > kSloTargetSeconds) ++pt.slo_violations;
    }
    slo.Publish();
    std::sort(latencies.begin(), latencies.end());
    pt.p50_ms = 1e3 * Percentile(latencies, 0.50);
    pt.p99_ms = 1e3 * Percentile(latencies, 0.99);
    if (const obs::Counter* wasted =
            obs::Registry().FindCounter("logfs.serve.rpc.wasted_attempts")) {
      pt.wasted_attempts = wasted->Value();
    }
    pt.host_seconds = HostNow() - host_start;
    points->push_back(pt);
    std::cout << "  serve clients=" << n << " ops=" << pt.ops << " traces=" << pt.traces
              << " p50=" << pt.p50_ms << "ms p99=" << pt.p99_ms << "ms lease_wait="
              << pt.shares.Share(static_cast<size_t>(obs::PathClass::kLeaseWait))
              << " retransmit="
              << pt.shares.Share(static_cast<size_t>(obs::PathClass::kRetransmit))
              << " wasted=" << pt.wasted_attempts << " (" << pt.host_seconds
              << "s host)\n";
  }
  return 0;
}

struct ShardPoint {
  uint32_t shards = 0;
  int threads = 0;
  uint64_t ops = 0;
  ClassShares shares;
  double host_seconds = 0.0;
};

int RunShardSweep(bool smoke, std::vector<ShardPoint>* points) {
  // Real contention needs real overlap: each thread's loop must outlast a
  // scheduler quantum (on a single-CPU host a short loop runs to completion
  // inside one time slice and no thread ever blocks), hence the op counts
  // and the start barrier. The measured shares are host-dependent, like
  // every wall-clock number in this file.
  const std::vector<uint32_t> sweep =
      smoke ? std::vector<uint32_t>{1, 2} : std::vector<uint32_t>{1, 2, 4};
  const int threads = 4;
  const int ops_per_thread = smoke ? 200 : 2000;

  for (uint32_t shards : sweep) {
    const double host_start = HostNow();
    obs::Registry().ResetAll();
    obs::Tracer().Clear();

    SimClock clock;
    CpuModel cpu(&clock, 10.0);
    MemoryDisk disk(131072, &clock);
    LfsParams params;
    params.max_inodes = 4096;
    params.segment_size = 1 << 19;
    params.clean_start_segments = 3;
    params.clean_stop_segments = 5;
    params.reserved_segments = 2;
    if (!ShardedLfs::Format(&disk, params, shards).ok()) return 1;
    auto mounted = ShardedLfs::Mount(&disk, &clock, &cpu);
    if (!mounted.ok()) return 1;
    std::unique_ptr<ShardedLfs> fs = std::move(mounted).value();

    std::vector<InodeNum> files;
    for (int i = 0; i < 2; ++i) {
      auto created = fs->Create(1, "hot" + std::to_string(i), FileType::kRegular);
      if (!created.ok()) return 1;
      files.push_back(*created);
    }

    std::atomic<int> ready{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        ready.fetch_add(1);
        while (ready.load() < threads) std::this_thread::yield();
        std::vector<std::byte> buf(4096, std::byte{static_cast<unsigned char>(t)});
        for (int i = 0; i < ops_per_thread; ++i) {
          // Fsync every few writes: without it everything stays in the
          // buffer cache, the sim clock barely moves inside the lock, and
          // there is nothing to attribute. The sync puts real device time
          // under the held section — and real waits on the threads stuck
          // behind it.
          obs::TraceRoot root(&clock, "bench.op",
                              i % 3 == 0 ? "read" : (i % 4 == 3 ? "fsync" : "write"));
          InodeNum ino = files[i % files.size()];
          if (i % 3 == 0) {
            (void)fs->Read(ino, 0, buf);
          } else {
            (void)fs->Write(ino, uint64_t(i % 8) * 4096, buf);
            if (i % 4 == 3) (void)fs->Fsync(ino);
          }
        }
      });
    }
    for (auto& th : workers) th.join();

    ShardPoint pt;
    pt.shards = shards;
    pt.threads = threads;
    pt.ops = static_cast<uint64_t>(threads) * ops_per_thread;
    for (const obs::TraceTree& tree :
         obs::AssembleTraceTrees(obs::Tracer().Events())) {
      const obs::Breakdown b = obs::AnalyzeCriticalPath(tree);
      if (b.category == "bench.op") pt.shares.Add(b);
    }
    pt.host_seconds = HostNow() - host_start;
    points->push_back(pt);
    std::cout << "  shards=" << shards << " threads=" << threads << " ops=" << pt.ops
              << " shard_lock_share="
              << pt.shares.Share(static_cast<size_t>(obs::PathClass::kShardLock))
              << " disk_share="
              << pt.shares.Share(static_cast<size_t>(obs::PathClass::kDisk)) << " ("
              << pt.host_seconds << "s host)\n";
  }
  return 0;
}

struct SelfCost {
  double enabled_ns_per_span = 0.0;
  double disabled_ns_per_op = 0.0;
};

SelfCost MeasureSelfCost(bool smoke) {
  SelfCost cost;
  const int iters = smoke ? 50'000 : 500'000;
  obs::Tracer().Clear();
  obs::Tracer().SetCapacity(4096);

  obs::SetTracingEnabled(true);
  double t0 = HostNow();
  for (int i = 0; i < iters; ++i) {
    const obs::TraceContext ctx = obs::MintTrace();
    if (ctx.active()) {
      obs::Tracer().RecordSpanIds("bench", "span", 0.0, 1e-6, ctx.trace_id,
                                  ctx.span_id, 0);
    }
  }
  cost.enabled_ns_per_span = (HostNow() - t0) / iters * 1e9;

  obs::SetTracingEnabled(false);
  t0 = HostNow();
  for (int i = 0; i < iters; ++i) {
    // The dormant path every call site pays with the gate off: mint returns
    // the inactive context and the active() check skips the record.
    const obs::TraceContext ctx = obs::MintTrace();
    if (ctx.active()) {
      obs::Tracer().RecordSpanIds("bench", "span", 0.0, 1e-6, ctx.trace_id,
                                  ctx.span_id, 0);
    }
  }
  cost.disabled_ns_per_op = (HostNow() - t0) / iters * 1e9;
  obs::SetTracingEnabled(true);
  obs::Tracer().Clear();
  obs::Tracer().SetCapacity(65536);
  return cost;
}

int RunBench(bool smoke, const std::string& out_path) {
  std::cout << "=== Trace attribution bench (" << (smoke ? "smoke" : "full")
            << "): critical-path shares + tracer self-cost ===\n"
            << "metrics_enabled=" << (obs::kMetricsEnabled ? "true" : "false") << "\n";

  std::vector<ServePoint> serve_points;
  if (int rc = RunServeSweep(smoke, &serve_points); rc != 0) return rc;
  std::vector<ShardPoint> shard_points;
  if (int rc = RunShardSweep(smoke, &shard_points); rc != 0) return rc;
  const SelfCost cost = MeasureSelfCost(smoke);
  std::cout << "  tracer self-cost: " << cost.enabled_ns_per_span
            << " ns/span enabled, " << cost.disabled_ns_per_op
            << " ns/op gated off\n";

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"trace_attribution\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"metrics_enabled\": " << (obs::kMetricsEnabled ? "true" : "false") << ",\n"
      << "  \"slo_target_ms\": 50,\n"
      << "  \"serve_points\": [\n";
  for (size_t i = 0; i < serve_points.size(); ++i) {
    const ServePoint& p = serve_points[i];
    out << "    {\"clients\": " << p.clients << ", \"ops\": " << p.ops
        << ", \"traces\": " << p.traces << ", \"sim_seconds\": " << p.sim_seconds
        << ", \"p50_ms\": " << p.p50_ms << ", \"p99_ms\": " << p.p99_ms
        << ", \"slo_violations\": " << p.slo_violations
        << ", \"wasted_attempts\": " << p.wasted_attempts << ", \"shares\": ";
    AppendShares(out, p.shares);
    out << ", \"host_seconds\": " << p.host_seconds << "}"
        << (i + 1 < serve_points.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"shard_points\": [\n";
  for (size_t i = 0; i < shard_points.size(); ++i) {
    const ShardPoint& p = shard_points[i];
    out << "    {\"shards\": " << p.shards << ", \"threads\": " << p.threads
        << ", \"ops\": " << p.ops << ", \"shares\": ";
    AppendShares(out, p.shares);
    out << ", \"host_seconds\": " << p.host_seconds << "}"
        << (i + 1 < shard_points.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"tracer_self_cost\": {\"enabled_ns_per_span\": "
      << cost.enabled_ns_per_span
      << ", \"disabled_ns_per_op\": " << cost.disabled_ns_per_op << "}\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace logfs

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_PR8.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--smoke] [--out PATH]\n";
      return 2;
    }
  }
  return logfs::RunBench(smoke, out_path);
}
