// Multi-client file-service bench (PR 6): scales a lease-based serve
// cluster across client counts under the canonical shared-file workload —
// Zipf(s=0.9) file popularity, 30% writes — and reports throughput
// (completed ops per simulated second) and the client-observed latency
// distribution (p50/p99/max) at each scale, plus the protocol counters that
// explain the curve: lease grants and revokes, cache hit rate, retransmits
// suppressed by the server's dedup cache.
//
// The sweep holds total work roughly constant (~ops_total ops spread over N
// clients), so what changes point-to-point is contention: more clients
// sharing the same Zipf-hot files means more write-lease recalls, and p99
// shows the recall round-trips that throughput alone hides. Emits
// BENCH_PR6.json.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/serve/cluster.h"
#include "src/serve/driver.h"
#include "src/workload/serve_load.h"

namespace logfs {
namespace {

double HostNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  const size_t idx = std::min(sorted.size() - 1,
                              static_cast<size_t>(p * static_cast<double>(sorted.size())));
  return sorted[idx];
}

struct Point {
  size_t clients = 0;
  uint64_t ops = 0;
  uint64_t errors = 0;
  double sim_seconds = 0.0;
  double ops_per_sim_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double cache_hit_rate = 0.0;
  uint64_t lease_grants = 0;
  uint64_t lease_renewals = 0;
  uint64_t revokes = 0;
  uint64_t dup_suppressed = 0;
  double host_seconds = 0.0;
};

int RunBench(bool smoke, const std::string& out_path) {
  std::cout << "=== Serve cluster scaling bench (" << (smoke ? "smoke" : "full")
            << "): Zipf(0.9) shared files ===\n";

  const std::vector<size_t> sweep =
      smoke ? std::vector<size_t>{4, 16} : std::vector<size_t>{8, 64, 256, 1000};
  const uint64_t ops_total = smoke ? 160 : 4000;

  std::vector<Point> points;
  for (size_t n : sweep) {
    const double host_start = HostNow();
    serve::ServeClusterParams params;
    params.clients = n;
    params.client.cache_blocks = 32;

    std::vector<double> samples;
    params.client.latency_hook = [&samples](const char*, double seconds) {
      samples.push_back(seconds);
    };
    auto cluster = serve::ServeCluster::Create(params);
    if (!cluster.ok()) {
      std::cerr << "cluster create failed: " << cluster.status().ToString() << "\n";
      return 1;
    }
    serve::ServeCluster& c = **cluster;

    ServeLoadParams lp;
    lp.clients = n;
    lp.files = 64;
    lp.zipf_s = 0.9;
    lp.ops_per_client = std::max<uint64_t>(4, ops_total / n);
    lp.write_fraction = 0.3;
    lp.file_size = 64 * 1024;
    lp.mean_think_seconds = 0.05;
    lp.seed = 17;

    serve::DriveOptions drive;
    // At 1000 clients the recall queues are long and every parked client
    // retransmits on its RTO; that is contention, not livelock — give the
    // big points the events they need.
    drive.max_events = 400'000'000;
    auto stats = serve::DriveSharedLoad(c, MakeSharedLoad(lp), drive);
    if (!stats.ok()) {
      std::cerr << "drive failed at " << n << " clients: "
                << stats.status().ToString() << "\n";
      return 1;
    }

    Point pt;
    pt.clients = n;
    pt.ops = stats->ops_completed;
    pt.errors = stats->errors;
    pt.sim_seconds = c.clock()->Now();
    pt.ops_per_sim_sec =
        pt.sim_seconds > 0 ? static_cast<double>(pt.ops) / pt.sim_seconds : 0.0;
    std::sort(samples.begin(), samples.end());
    pt.p50_ms = 1e3 * Percentile(samples, 0.50);
    pt.p99_ms = 1e3 * Percentile(samples, 0.99);
    pt.max_ms = samples.empty() ? 0.0 : 1e3 * samples.back();
    uint64_t hits = 0;
    uint64_t misses = 0;
    for (size_t i = 0; i < c.num_clients(); ++i) {
      const serve::Client::CacheStats cs = c.client(i)->cache_stats();
      hits += cs.hits;
      misses += cs.misses;
    }
    pt.cache_hit_rate =
        hits + misses > 0 ? static_cast<double>(hits) / static_cast<double>(hits + misses)
                          : 0.0;
    pt.lease_grants = c.server()->leases().grants();
    pt.lease_renewals = c.server()->leases().renewals();
    pt.revokes = c.server()->revokes_sent();
    pt.dup_suppressed = c.server()->duplicates_suppressed();
    pt.host_seconds = HostNow() - host_start;
    if (c.shadow().violation_count() != 0) {
      std::cerr << "shadow violation at " << n << " clients: "
                << c.shadow().violations()[0] << "\n";
      return 1;
    }
    points.push_back(pt);
    std::cout << "  clients=" << n << " ops=" << pt.ops << " errors=" << pt.errors
              << " ops/sim_s=" << pt.ops_per_sim_sec << " p50=" << pt.p50_ms
              << "ms p99=" << pt.p99_ms << "ms hit_rate=" << pt.cache_hit_rate
              << " revokes=" << pt.revokes << " (" << pt.host_seconds << "s host)\n";
  }

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"serve_scaling\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"workload\": {\"zipf_s\": 0.9, \"files\": 64, \"write_fraction\": 0.3,"
      << " \"io_size\": 4096, \"mean_think_seconds\": 0.05},\n"
      << "  \"points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    out << "    {\"clients\": " << p.clients << ", \"ops\": " << p.ops
        << ", \"errors\": " << p.errors << ", \"sim_seconds\": " << p.sim_seconds
        << ", \"ops_per_sim_sec\": " << p.ops_per_sim_sec
        << ", \"p50_ms\": " << p.p50_ms << ", \"p99_ms\": " << p.p99_ms
        << ", \"max_ms\": " << p.max_ms
        << ", \"cache_hit_rate\": " << p.cache_hit_rate
        << ", \"lease_grants\": " << p.lease_grants
        << ", \"lease_renewals\": " << p.lease_renewals
        << ", \"revokes\": " << p.revokes
        << ", \"dup_suppressed\": " << p.dup_suppressed
        << ", \"host_seconds\": " << p.host_seconds << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace logfs

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_PR6.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--smoke] [--out PATH]\n";
      return 2;
    }
  }
  return logfs::RunBench(smoke, out_path);
}
